"""Edge-case tests of the shared protocol engine: duplicates, stale
attempts, idempotency, conflicting commands, recovery corners."""

import pytest

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.net.message import Message
from repro.protocols.states import TxnState


@pytest.fixture
def catalog():
    return CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()


@pytest.fixture
def cluster(catalog):
    return Cluster(catalog, protocol="qtp1")


def committed_cluster(cluster):
    txn = cluster.update(origin=1, writes={"x": 5})
    cluster.run()
    assert cluster.outcome(txn.txn).outcome == "commit"
    return txn


class TestIdempotency:
    def test_duplicate_commit_command_absorbed(self, cluster):
        txn = committed_cluster(cluster)
        engine = cluster.sites[2].engine
        before = len(cluster.sites[2].wal)
        engine._on_commit_cmd(Message(1, 2, "qtp1.commit", txn.txn))
        assert len(cluster.sites[2].wal) == before  # no re-logging
        assert cluster.outcome(txn.txn).conflicts == 0

    def test_conflicting_command_traced_not_applied(self, cluster):
        txn = committed_cluster(cluster)
        engine = cluster.sites[2].engine
        engine._on_abort_cmd(Message(1, 2, "qtp1.abort", txn.txn))
        # the first decision stands; the conflict is recorded
        assert engine.record(txn.txn).state is TxnState.C
        assert cluster.tracer.count("decision-conflict", txn=txn.txn) == 1
        assert cluster.sites[2].store.read("x").value == 5

    def test_duplicate_vote_req_ignored(self, cluster):
        txn = committed_cluster(cluster)
        engine = cluster.sites[2].engine
        begins_before = len([r for r in cluster.sites[2].wal if r.kind == "begin"])
        engine._on_vote_req(
            Message(
                1,
                2,
                "qtp1.vote-req",
                txn.txn,
                {
                    "writes": {"x": [5, 1]},
                    "participants": [1, 2, 3],
                    "coordinator": 1,
                },
            )
        )
        begins_after = len([r for r in cluster.sites[2].wal if r.kind == "begin"])
        assert begins_after == begins_before

    def test_duplicate_prepare_reacked(self, cluster):
        """A re-delivered PREPARE to a PC site is re-acked, not re-logged."""
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.run_until(3.2)  # participants are in PC now
        engine = cluster.sites[2].engine
        assert engine.record(txn.txn).state is TxnState.PC
        pcs_before = len([r for r in cluster.sites[2].wal if r.kind == "pc"])
        engine._on_prepare(Message(1, 2, "qtp1.prepare", txn.txn))
        pcs_after = len([r for r in cluster.sites[2].wal if r.kind == "pc"])
        assert pcs_after == pcs_before

    def test_commands_for_unknown_txn_ignored(self, cluster):
        engine = cluster.sites[2].engine
        engine._on_commit_cmd(Message(1, 2, "qtp1.commit", "ghost"))
        engine._on_abort_cmd(Message(1, 2, "qtp1.abort", "ghost"))
        assert engine.record("ghost") is None


class TestStaleTerminationMessages:
    def test_stale_attempt_state_reply_ignored(self, cluster):
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run_until(7.0)  # site 3 is coordinating attempt 1
        engine = cluster.sites[3].engine
        record = engine.record(txn.txn)
        if record.terminating:
            engine._on_term_state(
                Message(2, 3, "qtp1.t.state", txn.txn, {"attempt": 999, "state": "C"})
            )
            assert 2 not in record.term_states or record.term_states[2] is not TxnState.C
        cluster.run()
        assert cluster.outcome(txn.txn).atomic

    def test_stale_ack_ignored(self, cluster):
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 1))
        cluster.run_until(7.0)
        engine = cluster.sites[3].engine
        record = engine.record(txn.txn)
        engine._on_term_pc_ack(
            Message(2, 3, "qtp1.t.pc-ack", txn.txn, {"attempt": 999})
        )
        assert 2 not in record.term_supporters
        cluster.run()
        assert cluster.outcome(txn.txn).atomic

    def test_state_req_materializes_q_record(self, cluster):
        """A site that never saw the vote-req answers a termination poll
        from the initial state — the paper's immediate-abort witness."""
        engine = cluster.sites[3].engine
        engine._on_term_state_req(
            Message(
                2,
                3,
                "qtp1.t.state-req",
                "T-new",
                {
                    "attempt": 1,
                    "coordinator": 2,
                    "writes": {"x": [1, 1]},
                    "participants": [1, 2, 3],
                },
            )
        )
        record = engine.record("T-new")
        assert record is not None
        assert record.state is TxnState.Q

    def test_q_site_never_accepts_prepare(self, cluster):
        """A Q participant must not enter a committable state."""
        engine = cluster.sites[3].engine
        engine._on_term_state_req(
            Message(
                2, 3, "qtp1.t.state-req", "T-q",
                {"attempt": 1, "coordinator": 2, "writes": {"x": [1, 1]},
                 "participants": [1, 2, 3]},
            )
        )
        engine._on_term_prepare_commit(
            Message(2, 3, "qtp1.t.ptc", "T-q", {"attempt": 1})
        )
        assert engine.record("T-q").state is TxnState.Q


class TestCoordinatorRecoveryCorners:
    def test_decided_coordinator_rebroadcasts(self, catalog):
        """Coordinator crashes after logging commit but before all
        commands land; recovery re-announces."""
        cluster = Cluster(catalog, protocol="2pc")
        # the commit command to site 3 is lost
        cluster.network.add_filter(
            lambda m: m.mtype == "2pc.commit" and m.dst == 3
        )
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(2.5, 1))
        cluster.run_until(4.0)
        cluster.network.clear_filters()
        cluster.arm_failures(FailurePlan().recover(50.0, 1))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "commit"
        assert 3 in report.committed_sites  # learned from the re-broadcast

    def test_pure_coordinator_recovery(self, catalog):
        """An origin hosting no copies still recovers its coordinator
        role from the WAL (presumed abort for 2PC)."""
        cluster = Cluster(catalog, protocol="2pc", extra_sites=[9])
        txn = cluster.update(origin=9, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(1.5, 9).recover(40.0, 9))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "abort"
        assert set(report.aborted_sites) == {1, 2, 3}

    def test_threepc_recovered_coordinator_does_not_presume_abort(self, catalog):
        """For the three-phase families the prepare may have gone out;
        the recovered coordinator must defer to termination (which here
        commits — everyone reached PC)."""
        cluster = Cluster(catalog, protocol="qtp1", extra_sites=[9])
        txn = cluster.update(origin=9, writes={"x": 5})
        cluster.arm_failures(FailurePlan().crash(3.5, 9).recover(60.0, 9))
        cluster.run()
        report = cluster.outcome(txn.txn)
        assert report.outcome == "commit"


class TestMultiTransactionIndependence:
    def test_termination_is_per_transaction(self, cluster):
        """A failure terminating one transaction must not disturb an
        unrelated committed one."""
        t1 = cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        t2 = cluster.update(origin=2, writes={"x": 2})
        cluster.arm_failures(FailurePlan().crash(cluster.scheduler.now + 1.5, 2))
        cluster.run()
        assert cluster.outcome(t1.txn).outcome == "commit"
        report2 = cluster.outcome(t2.txn)
        assert report2.atomic
        assert cluster.read(1, "x").value in (1, 2)

    def test_interleaved_transactions_both_atomic(self, cluster):
        t1 = cluster.update(origin=1, writes={"x": 1})
        cluster.run_until(0.5)
        # t2 conflicts on locks and will vote no -> abort; t1 commits
        cluster.update(origin=2, writes={"x": 2}, txn_id="T-late")
        cluster.run()
        assert cluster.outcome(t1.txn).atomic
        assert cluster.outcome("T-late").atomic