"""Named regression tests for recovery bugs found by hypothesis.

The whole-run property search (tests/property/test_prop_runs.py) found
that a site which *committed and then crashed* rebuilt no record for
the decided transaction; a later termination poll materialized it as
Q ("never voted"), which drives the immediate-abort branch — a new
coordinator would then abort a committed transaction.  These tests pin
the minimal schedule and the two layers of the fix.
"""

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.net.message import Message
from repro.protocols.states import TxnState


def minimal_schedule_cluster():
    """The shrunk hypothesis counterexample: commit, mass crash, mass
    recovery, then a straggler (site 3, crashed in W before learning
    the outcome) runs termination against the recovered sites."""
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    cluster = Cluster(catalog, protocol="qtp1")
    cluster.update(origin=1, writes={"x": 42}, txn_id="T-reg")
    plan = (
        FailurePlan()
        .crash(1.0, 3)   # site 3 dies right after voting yes
        .crash(5.0, 1)   # the others die after committing
        .crash(6.0, 2)
        .crash(6.0, 4)
        .heal(60.0)
        .recover(61.0, 1)
        .recover(61.0, 2)
        .recover(61.0, 4)
        .recover(63.0, 3)
    )
    cluster.arm_failures(plan)
    cluster.run()
    return cluster


class TestDecidedRecoveryRegression:
    def test_no_abort_after_commit(self):
        cluster = minimal_schedule_cluster()
        report = cluster.outcome("T-reg")
        assert report.atomic
        assert report.outcome == "commit"
        assert set(report.committed_sites) == {1, 2, 3, 4}

    def test_recovered_decided_site_rebuilds_terminal_record(self):
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        cluster.network.crash_site(2)
        cluster.network.recover_site(2)
        record = cluster.sites[2].engine.record(txn.txn)
        assert record is not None
        assert record.state is TxnState.C

    def test_stale_attempt_does_not_reblock_after_recovery(self):
        """Second hypothesis find (liveness): a termination attempt
        polled while sites were still down must not land its BLOCK
        verdict *after* they recover — the stale attempt would
        broadcast blocked-notices that wedge the fresh epoch.  kick()
        now invalidates in-flight attempts."""
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
        cluster = Cluster(catalog, protocol="qtp1")
        cluster.update(origin=1, writes={"x": 1}, txn_id="T-live")
        plan = (
            FailurePlan()
            .crash(1.0, 1)
            .crash(1.0, 2)
            .crash(1.0, 3)
            .heal(50.0)  # site 4 starts a poll seeing only itself...
            .recover(52.0, 1)  # ...while the others come back mid-attempt
            .recover(52.0, 2)
            .recover(52.0, 3)
            .recover(53.0, 4)
        )
        cluster.arm_failures(plan)
        cluster.run()
        assert cluster.live_undecided("T-live") == []
        report = cluster.outcome("T-live")
        assert report.atomic
        assert report.outcome == "abort"  # all-W epoch: r(x) votes abort

    def test_poll_of_recovered_decided_site_reports_decision(self):
        """Even with no rebuilt record, a state-req must be answered
        from the WAL decision, never with Q."""
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        engine = cluster.sites[2].engine
        engine._records.clear()  # simulate the pre-fix state
        engine._on_term_state_req(
            Message(
                3,
                2,
                "qtp1.t.state-req",
                txn.txn,
                {
                    "attempt": 1,
                    "coordinator": 3,
                    "writes": {"x": [5, 1]},
                    "participants": [1, 2, 3],
                },
            )
        )
        assert engine.record(txn.txn).state is TxnState.C
