"""Stream-identity checks for the memoized-catalog call sites.

The experiment drivers that build their catalog through
:func:`~repro.workload.catalog_memo.memoized_catalog` must be
*bit-identical* to a cold build: the memo captures the pre-build RNG
state and restores the post-build state on a hit, so a warm run draws
the exact same stream as a cold one.  Each test clears the worker cache
(cold), runs once to populate it, and asserts the warm rerun agrees on
every deterministic output.
"""

from repro.engine.executor import clear_worker_cache
from repro.experiments.sweeps import modelcheck_run, storm_run
from repro.experiments.workload_study import run_workload
from repro.replay import cluster_counters
from repro.workload.scenarios import run_wan_storm


class TestStreamIdentity:
    def test_storm_run_cold_vs_warm(self):
        clear_worker_cache()
        cold = [storm_run(seed, "qtp1") for seed in range(3)]
        warm = [storm_run(seed, "qtp1") for seed in range(3)]
        assert cold == warm

    def test_modelcheck_run_cold_vs_warm(self):
        clear_worker_cache()
        cold = [modelcheck_run(seed, "qtp2") for seed in range(3)]
        warm = [modelcheck_run(seed, "qtp2") for seed in range(3)]
        assert cold == warm

    def test_run_workload_cold_vs_warm(self):
        clear_worker_cache()
        cold = run_workload("qtp1", n_txns=10, seed=4)
        warm = run_workload("qtp1", n_txns=10, seed=4)
        assert cold == warm

    def test_run_wan_storm_cold_vs_warm(self):
        clear_worker_cache()
        probes = []
        kwargs = dict(seed=2, n_regions=3, sites_per_region=4, probe=probes.append)
        cold = run_wan_storm("qtp1", **kwargs)
        warm = run_wan_storm("qtp1", **kwargs)
        assert cold.outcome == warm.outcome
        assert cold.states() == warm.states()
        assert cluster_counters(probes[0]) == cluster_counters(probes[1])
