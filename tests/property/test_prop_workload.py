"""Determinism properties of the WorkloadSpec scenario sweeps.

Same bar the engine properties set: a sweep over the new scenario
drivers is a function of its spec — serial and parallel executions must
produce byte-identical artifacts, and every driver must be a pure
function of its seed (two runs agree exactly).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.engine import SweepSpec, run_sweep
from repro.bench.cases import (
    cross_region_trial,
    elastic_join_trial,
    read_mostly_trial,
    skewed_contention_trial,
)

#: (task, grid, fixed) per scenario — sizes kept tier-1 small.
SCENARIO_SWEEPS = [
    (skewed_contention_trial, {"protocol": ["2pc", "qtp1"]}, {"n_txns": 12}),
    (read_mostly_trial, {"protocol": ["qtp1"]}, {"n_txns": 16}),
    (cross_region_trial, {"protocol": ["qtp1"]}, {"n_txns": 8}),
    (elastic_join_trial, {"protocol": ["qtp1"]}, {"n_txns": 16}),
]


def _artifact(task, grid, fixed, base_seed, workers):
    """Canonical bytes of the sweep's deterministic portion.

    The trials time themselves (``timing.wall_s``), so the comparison
    strips that and keeps exactly what ``bench diff`` gates on.
    """
    spec = SweepSpec(
        "workload-equiv",
        task,
        grid=grid,
        runs=2,
        base_seed=base_seed,
        seeding="offset",
        fixed=fixed,
    )
    outcome = run_sweep(spec, workers=workers)
    rows = [
        {
            "index": r.index,
            "params": r.params,
            "run": r.run,
            "seed": r.seed,
            "counters": r.value["counters"],
        }
        for r in outcome.results
    ]
    return json.dumps(rows, sort_keys=True)


class TestScenarioSweepDeterminism:
    @given(st.integers(0, 2**16))
    @settings(max_examples=3, deadline=None)
    def test_serial_equals_parallel_byte_identical(self, base_seed):
        for task, grid, fixed in SCENARIO_SWEEPS:
            serial = _artifact(task, grid, fixed, base_seed, workers=1)
            parallel = _artifact(task, grid, fixed, base_seed, workers=2)
            assert serial == parallel, f"{task.__name__} differs across worker counts"

    def test_drivers_are_pure_in_their_seed(self):
        for task, grid, fixed in SCENARIO_SWEEPS:
            protocol = grid["protocol"][0]
            first = task(7, protocol=protocol, **fixed)
            second = task(7, protocol=protocol, **fixed)
            assert first["counters"] == second["counters"], task.__name__


class TestSamplerDistributions:
    """Alias and scan sample the *same* Zipf law.

    The two samplers consume the RNG differently, so their streams are
    incomparable draw-for-draw — the equivalence bar is distributional:
    on a fixed seed and a small catalog, per-item frequencies must agree
    within a tolerance far tighter than the gap between adjacent Zipf
    ranks.
    """

    def _frequencies(self, sampler, seed, n_draws=6000, zipf_s=1.3):
        import random

        from repro.workload.generators import random_catalog
        from repro.workload.spec import WorkloadSpec

        catalog = random_catalog(random.Random(4), n_sites=6, n_items=6, replication=3)
        compiled = WorkloadSpec(
            popularity="zipf", zipf_s=zipf_s, sampler=sampler
        ).compile(catalog)
        rng = random.Random(seed)
        counts = {name: 0 for name in catalog.item_names}
        for __ in range(n_draws):
            counts[compiled.pick_item(rng)] += 1
        return {name: c / n_draws for name, c in counts.items()}

    @given(st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_single_pick_frequencies_agree(self, seed):
        scan = self._frequencies("scan", seed)
        alias = self._frequencies("alias", seed)
        # total-variation distance between two 6k-draw empirical
        # distributions of the same law stays well under 0.05
        tvd = sum(abs(scan[k] - alias[k]) for k in scan) / 2
        assert tvd < 0.05, f"samplers diverge: TVD {tvd:.3f}"

    @given(st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_footprint_first_pick_frequencies_agree(self, seed):
        import random

        from repro.workload.generators import random_catalog
        from repro.workload.spec import WorkloadSpec

        catalog = random_catalog(random.Random(4), n_sites=6, n_items=6, replication=3)
        draws = 3000
        freqs = {}
        for sampler in ("scan", "alias"):
            compiled = WorkloadSpec(
                popularity="zipf", zipf_s=1.3, footprint=(2, 3), sampler=sampler
            ).compile(catalog)
            rng = random.Random(seed)
            counts = {name: 0 for name in catalog.item_names}
            for __ in range(draws):
                picked = compiled.pick_items(rng)
                assert len(set(picked)) == len(picked)  # without replacement
                counts[picked[0]] += 1
            freqs[sampler] = {name: c / draws for name, c in counts.items()}
        tvd = sum(abs(freqs["scan"][k] - freqs["alias"][k]) for k in freqs["scan"]) / 2
        assert tvd < 0.06, f"footprint first-pick diverges: TVD {tvd:.3f}"
