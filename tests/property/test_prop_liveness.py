"""Liveness under eventually-good networks.

Safety holds under *any* schedule (test_prop_runs); liveness needs the
network to eventually behave.  Property: for any generated fault
schedule that ends with a permanent heal and every site recovered, the
transaction fully terminates — no live participant is left undecided
or blocked once the dust settles.  This is the operational content of
the paper's "blocked ... wait for the failures to recover".
"""

from hypothesis import given, settings, strategies as st

from repro import CatalogBuilder, Cluster, FailurePlan


@st.composite
def eventually_good_plans(draw):
    """Arbitrary chaos in [0.5, 20], then a permanent heal + recovery."""
    plan = FailurePlan()
    sites = [1, 2, 3, 4]
    n_events = draw(st.integers(min_value=1, max_value=5))
    for __ in range(n_events):
        t = draw(st.floats(min_value=0.5, max_value=20.0))
        kind = draw(st.sampled_from(["crash", "partition", "heal", "recover"]))
        if kind == "crash":
            plan.crash(t, draw(st.sampled_from(sites)))
        elif kind == "recover":
            plan.recover(t, draw(st.sampled_from(sites)))
        elif kind == "heal":
            plan.heal(t)
        else:
            split = draw(st.integers(min_value=1, max_value=3))
            plan.partition(t, sites[:split], sites[split:])
    plan.heal(50.0)
    for site in sites:
        plan.recover(draw(st.floats(min_value=51.0, max_value=55.0)), site)
    return plan


@given(eventually_good_plans(), st.sampled_from(["qtp1", "qtp2", "3pc", "skq", "qtpp"]))
@settings(max_examples=80, deadline=None)
def test_eventual_heal_terminates_everyone(plan, protocol):
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    cluster = Cluster(catalog, protocol=protocol)
    cluster.update(origin=1, writes={"x": 1}, txn_id="T-live")
    cluster.arm_failures(plan)
    cluster.run()
    assert cluster.live_undecided("T-live") == [], plan.describe()


@given(eventually_good_plans())
@settings(max_examples=40, deadline=None)
def test_terminated_runs_agree_with_wal(plan):
    """After full termination, every site's WAL decision matches the
    collective outcome (durability of the group decision)."""
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    cluster = Cluster(catalog, protocol="qtp1")
    cluster.update(origin=1, writes={"x": 1}, txn_id="T-live")
    cluster.arm_failures(plan)
    cluster.run()
    decisions = {
        cluster.sites[s].wal.decision("T-live")
        for s in (1, 2, 3, 4)
        if cluster.sites[s].wal.decision("T-live") is not None
    }
    assert len(decisions) <= 1, plan.describe()
