"""Bench-suite determinism properties.

``bench diff`` is only a trustworthy gate if the suite is a *fixed
point*: running the same cases twice with the same seeds — or at any
worker count — must yield byte-identical deterministic payloads, so the
only way a committed ``BENCH_*.json`` can disagree with a fresh run is
a genuine behaviour change.  The hypothesis case extends the guarantee
across seeds for the A/B microbenches, whose legacy and optimized arms
must also agree with *each other* on every counter.
"""

from hypothesis import given, settings, strategies as st

from repro.bench import compare_case, default_suite, deterministic_payload, encode
from repro.bench.cases import (
    catalog_memo_trial,
    lock_probe_trial,
    net_fanout_flyweight_trial,
    net_fanout_trial,
    partition_churn_trial,
    recovery_replay_trial,
    suite_warm_pool_trial,
    sweep_resume_trial,
    sweep_streaming_trial,
    trace_record_trial,
    wal_append_trial,
    zipf_sampling_trial,
)

#: cases cheap enough to run repeatedly inside tier-1.
QUICK_CASES = [
    "scheduler_drain",
    "commit_mix",
    "heavy_workload",
    "net_deliver_fanout",
    "wal_append",
    "trace_record",
    "partition_churn",
    "suite_warm_pool",
    "skewed_contention",
    "read_mostly",
    "cross_region_txn",
    "elastic_join",
    "open_loop_service",
    "ramp_ceiling",
    "rolling_upgrade",
    "flash_crowd",
    "gray_failure",
    "lock_probe",
    "net_fanout_flyweight",
    "zipf_sampling",
    "recovery_replay",
    "catalog_memo",
    "trace_replay_tournament",
    "sweep_streaming",
    "sweep_resume",
]


def _payload_bytes(suite, name, workers=1):
    payload = suite.run_case(name, workers=workers, measure_time=False)
    return encode(deterministic_payload(payload))


class TestFixedPoint:
    def test_two_runs_byte_identical(self):
        suite = default_suite("quick")
        for name in QUICK_CASES:
            first = _payload_bytes(suite, name)
            second = _payload_bytes(suite, name)
            assert first == second, f"case {name} is not a fixed point"

    def test_diff_of_two_runs_is_clean(self):
        suite = default_suite("quick")
        for name in QUICK_CASES:
            baseline = suite.run_case(name, measure_time=False)
            fresh = suite.run_case(name, measure_time=False)
            verdict = compare_case(baseline, fresh)
            assert verdict.ok, f"{name}: {verdict.errors}"

    def test_serial_vs_parallel_byte_identical(self):
        suite = default_suite("quick")
        for name in QUICK_CASES:
            serial = _payload_bytes(suite, name, workers=1)
            parallel = _payload_bytes(suite, name, workers=2)
            assert serial == parallel, f"case {name} differs across worker counts"


class TestABCountersAgree:
    """The optimized hot paths must change time only, never behaviour."""

    @given(st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_fanout_counters_identical_across_modes(self, seed):
        legacy = net_fanout_trial(seed, cached=False, n_sites=9, rounds=2)
        cached = net_fanout_trial(seed, cached=True, n_sites=9, rounds=2)
        assert legacy["counters"] == cached["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_wal_replay_counters_identical_except_flushes(self, seed):
        legacy = wal_append_trial(seed, grouped=False, n_txns=12, n_sites=5, replays=1)
        grouped = wal_append_trial(seed, grouped=True, n_txns=12, n_sites=5, replays=1)

        def sans_flushes(counters):
            return {k: v for k, v in counters.items() if k != "flushes"}

        assert sans_flushes(legacy["counters"]) == sans_flushes(grouped["counters"])
        # group commit batches flushes; legacy charges one per record
        assert grouped["counters"]["flushes"] <= legacy["counters"]["flushes"]
        assert legacy["counters"]["flushes"] == legacy["counters"]["forced"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_trace_counters_identical_across_stores(self, seed):
        legacy = trace_record_trial(seed, columnar=False, n_events=600, queries=12)
        columnar = trace_record_trial(seed, columnar=True, n_events=600, queries=12)
        assert legacy["counters"] == columnar["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_churn_counters_identical_across_interning(self, seed):
        fresh = partition_churn_trial(seed, intern=False, n_sites=10, rounds=4)
        interned = partition_churn_trial(seed, intern=True, n_sites=10, rounds=4)
        assert fresh["counters"] == interned["counters"]

    @given(st.integers(0, 2**10))
    @settings(max_examples=3, deadline=None)
    def test_warm_pool_counters_identical_across_executors(self, seed):
        cold = suite_warm_pool_trial(seed, warm=False, n_sweeps=2, runs_per_sweep=2)
        warm = suite_warm_pool_trial(seed, warm=True, n_sweeps=2, runs_per_sweep=2)
        assert cold["counters"] == warm["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_flyweight_counters_identical_across_modes(self, seed):
        legacy = net_fanout_flyweight_trial(seed, flyweight=False, n_sites=8, rounds=2)
        stamped = net_fanout_flyweight_trial(seed, flyweight=True, n_sites=8, rounds=2)
        assert legacy["counters"] == stamped["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_recovery_replay_stores_identical_across_modes(self, seed):
        scan = recovery_replay_trial(seed, indexed=False, n_txns=24, replays=1)
        indexed = recovery_replay_trial(seed, indexed=True, n_txns=24, replays=1)
        # install counts legitimately differ (version ladder vs newest),
        # but the replayed store state and the log shape must agree
        for key in ("wal_records_1x", "wal_records_4x", "store_checksum_1x", "store_checksum_4x"):
            assert scan["counters"][key] == indexed["counters"][key], key
        assert indexed["counters"]["installed_1x"] <= scan["counters"]["installed_1x"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_catalog_memo_counters_identical_across_modes(self, seed):
        rebuilt = catalog_memo_trial(seed, memo=False, reuses=3)
        memoized = catalog_memo_trial(seed, memo=True, reuses=3)
        # probe_sum pins the post-build RNG stream: state-capture hits
        # must leave the caller's draws bit-identical to a rebuild
        assert rebuilt["counters"] == memoized["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_sweep_streaming_counters_identical_across_backends(self, seed):
        # the streaming pipeline (JsonlSink + per-row reducer) must fold
        # the exact same rows, digest, and aggregates as the classic
        # accumulate-then-aggregate path
        memory = sweep_streaming_trial(seed, streaming=False, n_cells=80, n_items=60)
        streaming = sweep_streaming_trial(seed, streaming=True, n_cells=80, n_items=60)
        assert memory["counters"] == streaming["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_sweep_resume_counters_identical_across_modes(self, seed):
        # the fault-free resilient path must write the exact artifact
        # bytes the plain streaming path writes (artifact_sha is in the
        # counters), with zero retries and zero quarantined cells
        plain = sweep_resume_trial(seed, resilient=False, n_cells=60, n_items=40)
        resilient = sweep_resume_trial(seed, resilient=True, n_cells=60, n_items=40)
        assert plain["counters"] == resilient["counters"]
        assert resilient["counters"]["retried"] == 0
        assert resilient["counters"]["quarantined"] == 0

    @given(st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_lock_probe_counters_identical_across_modes(self, seed):
        # the exclusive-holder counter must reproduce every grant
        # decision of the legacy allocating compatibility scan
        legacy = lock_probe_trial(seed, tracked=False, n_readers=20, probes=200)
        tracked = lock_probe_trial(seed, tracked=True, n_readers=20, probes=200)
        assert legacy["counters"] == tracked["counters"]

    @given(st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_zipf_sampling_arms_each_deterministic(self, seed):
        # the two arms consume the RNG differently by design (the alias
        # sampler is opt-in for that reason); each arm must still be a
        # pure function of its seed
        for alias in (False, True):
            first = zipf_sampling_trial(seed, alias=alias, n_items=300, draws=40, fp_draws=8)
            second = zipf_sampling_trial(seed, alias=alias, n_items=300, draws=40, fp_draws=8)
            assert first["counters"] == second["counters"]
