"""Traffic-layer determinism properties.

The open-loop service must satisfy the same fixed-point contract the
closed-loop baselines pin: its counters are a pure function of the
seed — identical across repeated runs, across sweep worker counts, and
across a record→replay round trip.  The accounting identity
``offered == admitted + shed`` must hold at every seed, not just the
committed ones.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import ResultStore, SweepSpec, run_sweep
from repro.experiments.service_study import run_open_loop_service
from repro.replay import (
    DEFAULT_CONFIGS,
    RecordedTrace,
    fixed_point_ok,
    record_open_loop_service,
    replay_trace,
)


def open_loop_task(seed: int, protocol: str, rate: float) -> dict:
    """One small service interval, counters only (sweep-task shape)."""
    result = run_open_loop_service(
        protocol,
        seed=seed,
        rate=rate,
        duration=25.0,
        n_sites=6,
        episode_window=(8.0, 6.0),
    )
    return result.counters()


class TestOpenLoopSweepFixedPoint:
    def _artifact(self, workers: int) -> bytes:
        spec = SweepSpec(
            "traffic-open-loop",
            open_loop_task,
            grid={"protocol": ["2pc", "qtp1"], "rate": [0.8, 1.5]},
            runs=2,
            seeding="offset",
        )
        outcome = run_sweep(spec, workers=workers)
        return ResultStore.encode(ResultStore.payload(outcome))

    def test_identical_across_worker_counts(self):
        artifacts = {self._artifact(w) for w in (1, 2, 3)}
        assert len(artifacts) == 1


class TestOpenLoopAccounting:
    @given(st.integers(0, 2**16), st.sampled_from(["2pc", "qtp1", "qtp2"]))
    @settings(max_examples=8, deadline=None)
    def test_identities_hold_at_every_seed(self, seed, protocol):
        result = run_open_loop_service(
            protocol, seed=seed, rate=1.5, duration=20.0, n_sites=6
        )
        assert (
            result.offered
            == result.admitted + result.shed_backpressure + result.shed_unreachable
        )
        assert (
            result.admitted
            == result.committed
            + result.reads_committed
            + result.client_aborted
            + result.protocol_aborted
            + result.unresolved
        )
        assert result.latency["n"] <= result.admitted
        assert result.digest_state["n"] == result.latency["n"]


class TestRecordReplayFixedPoint:
    @given(st.integers(0, 2**16), st.sampled_from(["2pc", "qtp1"]))
    @settings(max_examples=5, deadline=None)
    def test_recorded_replay_reproduces_counters(self, seed, protocol):
        trace = record_open_loop_service(
            protocol, seed=seed, rate=1.0, duration=20.0, n_sites=6
        )
        recorded = next(c for c in DEFAULT_CONFIGS if c.name == "recorded")
        row = replay_trace(trace, recorded)
        assert fixed_point_ok(trace, row), (
            f"open-loop replay diverged at seed {seed}: {row}"
        )

    def test_artifact_bytes_stable_through_round_trip(self, tmp_path):
        trace = record_open_loop_service("qtp1", seed=7, rate=1.0, duration=20.0)
        path = tmp_path / "trace.jsonl.gz"
        trace.save(path)
        reloaded = RecordedTrace.load(path)
        assert reloaded.gaps == trace.gaps
        assert reloaded.to_lines() == trace.to_lines()
