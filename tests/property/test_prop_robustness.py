"""Robustness-layer A/B properties.

Every knob PR 10 adds — client retries, gray degradation, graceful
leave — is default-off, and these properties pin the "off" side to the
historical byte-exact behavior while pinning the "on" side's algebra:

* retries disabled (``retry=None`` or a one-attempt policy) leaves the
  closed-loop stream byte-identical across drivers;
* ``DegradeSite(factor=1.0)`` is an exact counter no-op;
* a graceful leave followed by a rejoin of the same site round-trips
  the catalog's replica placement and vote totals;
* a recorded gray-failure service replays to a fixed point (the
  artifact codec round-trips degrade/flap actions).
"""

from hypothesis import given, settings, strategies as st

from repro.db.cluster import Cluster
from repro.engine.resilience import RetryPolicy
from repro.experiments.resilience_study import gray_failure_plan, run_rolling_upgrade
from repro.experiments.service_study import run_open_loop_service
from repro.replay import DEFAULT_CONFIGS, RecordedTrace, fixed_point_ok, replay_trace
from repro.replay.recorder import cluster_counters, record_open_loop_service
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.traffic import TrafficEngine
from repro.workload.generators import memoized_catalog, random_catalog
from repro.workload.spec import WorkloadSpec

PROTOCOLS = st.sampled_from(["2pc", "qtp1", "qtp2"])


def closed_fingerprint(seed: int, protocol: str, retry) -> dict:
    """Everything a closed-loop run leaves behind, for A/B comparison."""
    registry = RngRegistry(seed)
    rng = registry.stream("traffic")
    catalog = random_catalog(rng, n_sites=6, n_items=4, replication=3)
    compiled = WorkloadSpec(n_txns=25, mean_spacing=1.0).compile(catalog)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    engine = TrafficEngine(cluster, compiled, rng, retry=retry)
    outcomes, handles = engine.run_closed()
    return {
        "outcomes": dict(outcomes),
        "decided": [cluster.outcome(t).outcome for t in handles],
        "history": cluster.committed_history(),
        "tallies": dict(engine.tallies),
        "retry_attempts": engine.retry_attempts,
        **cluster_counters(cluster),
    }


class TestRetriesOffByteIdentity:
    @given(st.integers(0, 2**16), PROTOCOLS)
    @settings(max_examples=6, deadline=None)
    def test_one_attempt_policy_equals_no_policy(self, seed, protocol):
        # max_attempts=1 means "never re-submit": the engine must take
        # the exact historical path, not a near-copy of it
        off = closed_fingerprint(seed, protocol, retry=None)
        one = closed_fingerprint(seed, protocol, retry=RetryPolicy(max_attempts=1))
        assert one == off
        assert one["retry_attempts"] == 0

    @given(st.integers(0, 2**10), st.sampled_from(["qtp1", "qtp2"]))
    @settings(max_examples=4, deadline=None)
    def test_upgrade_driver_with_retries_off_matches(self, seed, protocol):
        off = run_rolling_upgrade(protocol, seed=seed, n_txns=30, waves=2, retry=None)
        one = run_rolling_upgrade(
            protocol, seed=seed, n_txns=30, waves=2,
            retry=RetryPolicy(max_attempts=1),
        )
        assert one == off
        assert one["retry_attempts"] == 0


class TestDegradeUnitFactorNoop:
    @given(st.integers(0, 2**16), PROTOCOLS)
    @settings(max_examples=6, deadline=None)
    def test_factor_one_counter_parity(self, seed, protocol):
        # aim the degrade at a site that actually hosts copies (a random
        # catalog does not necessarily use every id in range)
        rng = RngRegistry(seed).stream("open-loop")
        catalog = memoized_catalog(
            rng,
            ("open-loop", 6, 4, 3),
            lambda r: random_catalog(r, n_sites=6, n_items=4, replication=3),
        )
        site = sorted(catalog.all_sites())[0]

        def service(failures):
            result = run_open_loop_service(
                protocol, seed=seed, rate=1.2, duration=20.0,
                n_sites=6, n_items=4, replication=3,
                episode_window=None, failures=failures,
            )
            return dict(result.counters())

        quiet = service(None)
        unit = service(FailurePlan().degrade(5.0, site, 1.0).restore(15.0, site))
        assert unit == quiet


class TestLeaveThenJoinRoundTrip:
    def _snapshot(self, catalog):
        return {
            name: (dict(catalog.item(name).copies), catalog.v(name))
            for name in catalog.item_names
        }

    @given(st.integers(0, 2**16), st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_catalog_votes_and_placement_round_trip(self, seed, site_idx):
        rng = RngRegistry(seed).stream("roundtrip")
        catalog = random_catalog(rng, n_sites=7, n_items=5, replication=3)
        hosts = sorted(catalog.all_sites())
        site = hosts[site_idx % len(hosts)]
        before = self._snapshot(catalog)
        evicted = catalog.evict_site(site)
        admitted_back = {name for name in before if site in before[name][0]}
        assert set(evicted) == admitted_back
        catalog.admit_site(site, evicted)
        assert self._snapshot(catalog) == before
        # the hand-off re-derives majority quorums over the restored
        # vote total for every touched item (untouched items keep their
        # originally drawn assignment), so Gifford holds by construction
        for name in sorted(admitted_back):
            v = catalog.v(name)
            assert catalog.w(name) == v // 2 + 1
            assert catalog.r(name) == v - catalog.w(name) + 1

    @given(st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_fixed_quorums_round_trip_exactly(self, seed):
        # rebalance=False keeps the drawn (possibly non-majority)
        # quorums, so the round trip restores the catalog bit-for-bit
        rng = RngRegistry(seed).stream("roundtrip-fixed")
        catalog = random_catalog(rng, n_sites=7, n_items=5, replication=4)
        site = sorted(catalog.all_sites())[0]
        before = {name: catalog.item(name) for name in catalog.item_names}
        try:
            evicted = catalog.evict_site(site, rebalance=False)
        except Exception:
            return  # shrunken votes cannot satisfy the kept quorums
        catalog.admit_site(site, evicted, rebalance=False)
        assert {name: catalog.item(name) for name in catalog.item_names} == before

    @given(st.integers(0, 2**10), st.sampled_from(["qtp1", "qtp2"]))
    @settings(max_examples=4, deadline=None)
    def test_cluster_leave_then_join_restores_placement(self, seed, protocol):
        rng = RngRegistry(seed).stream("churn")
        catalog = random_catalog(rng, n_sites=6, n_items=4, replication=3)
        site = sorted(catalog.all_sites())[0]
        hosted = [i for i in catalog.item_names if site in catalog.sites_of(i)]
        placement = {i: sorted(catalog.sites_of(i)) for i in catalog.item_names}
        cluster = Cluster(catalog, protocol=protocol, seed=seed)
        anchor = sorted(cluster.network.sites)[-1]
        plan = (
            FailurePlan()
            .leave(5.0, site)
            .join(20.0, site, copies={i: 1 for i in hosted}, near=anchor)
        )
        cluster.arm_failures(plan)
        cluster.scheduler.run()
        assert site in cluster.sites
        assert {i: sorted(catalog.sites_of(i)) for i in catalog.item_names} == placement


class TestGrayRecordReplayFixedPoint:
    def _gray_trace(self, seed: int, protocol: str) -> RecordedTrace:
        rng = RngRegistry(seed).stream("open-loop")
        catalog = memoized_catalog(
            rng,
            ("open-loop", 6, 4, 3),
            lambda r: random_catalog(r, n_sites=6, n_items=4, replication=3),
        )
        hosts = sorted(catalog.all_sites())
        plan = gray_failure_plan(
            6.0, 10.0, slow_site=hosts[0], factor=5.0,
            flap_src=hosts[1], flap_dst=hosts[2],
        )
        return record_open_loop_service(
            protocol, seed=seed, rate=1.2, duration=24.0,
            n_sites=6, n_items=4, replication=3, failures=plan,
        )

    @given(st.integers(0, 2**16), st.sampled_from(["2pc", "qtp2"]))
    @settings(max_examples=4, deadline=None)
    def test_gray_service_replays_to_fixed_point(self, seed, protocol):
        trace = self._gray_trace(seed, protocol)
        # the plan fired in full: degrade + flap + restore all applied
        kinds = [type(action).__name__ for action in trace.actions]
        assert kinds.count("DegradeSite") == 1
        assert kinds.count("FlapLink") == 1
        assert kinds.count("RestoreSite") == 1
        recorded = next(c for c in DEFAULT_CONFIGS if c.name == "recorded")
        row = replay_trace(trace, recorded)
        assert fixed_point_ok(trace, row), (
            f"gray-failure replay diverged at seed {seed}: {row}"
        )

    def test_gray_artifact_bytes_stable_through_round_trip(self, tmp_path):
        trace = self._gray_trace(11, "qtp2")
        path = tmp_path / "gray.jsonl.gz"
        trace.save(path)
        reloaded = RecordedTrace.load(path)
        assert reloaded.to_lines() == trace.to_lines()
        assert reloaded.actions == trace.actions
