"""Engine determinism properties: a sweep's output is a function of its
spec, never of its execution layout.

The multiprocess cases execute the *same* spec serially and under
several pool widths and require byte-identical artifacts — the property
the acceptance bar for the parallel engine rests on.  The hypothesis
cases pin down the seed derivation itself: total, deterministic,
injective across cells and runs, and independent of grid ordering.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import ResultStore, SweepSpec, derive_seed, run_sweep
from repro.experiments.sweeps import availability_run

param_values = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b", "qtp1"]))
param_dicts = st.dictionaries(
    st.sampled_from(["protocol", "waves", "n", "mode"]), param_values, max_size=3
)


def pure_task(seed: int, scale: int) -> list[float]:
    """A cheap but seed-sensitive stand-in for a simulation run."""
    rng = random.Random(seed)
    return [rng.random() * scale for _ in range(3)]


class TestSeedDerivation:
    @given(st.integers(0, 2**31), param_dicts, st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, base, params, run):
        assert derive_seed(base, "s", params, run) == derive_seed(base, "s", params, run)

    @given(st.integers(0, 2**31), param_dicts, st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_key_order_irrelevant(self, base, params, run):
        reversed_params = dict(reversed(list(params.items())))
        assert derive_seed(base, "s", params, run) == derive_seed(
            base, "s", reversed_params, run
        )

    @given(st.integers(0, 2**20), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_runs_get_distinct_seeds(self, base, run_a, run_b):
        if run_a != run_b:
            assert derive_seed(base, "s", {}, run_a) != derive_seed(base, "s", {}, run_b)

    def test_cells_get_distinct_seeds(self):
        seeds = {
            derive_seed(0, "s", {"protocol": p, "waves": w}, 0)
            for p in ("2pc", "3pc", "skq", "qtp1", "qtp2")
            for w in range(20)
        }
        assert len(seeds) == 100


class TestSpecExpansion:
    @given(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, unique=True),
        st.integers(1, 5),
        st.integers(0, 100),
        st.sampled_from(["derived", "offset"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_tasks_cover_grid_exactly_once(self, values, runs, base, seeding):
        spec = SweepSpec(
            "p",
            pure_task,
            grid={"scale": list(range(len(values)))},
            runs=runs,
            base_seed=base,
            seeding=seeding,
        )
        tasks = spec.tasks()
        assert len(tasks) == spec.n_tasks == len(values) * runs
        assert [t.index for t in tasks] == list(range(len(tasks)))
        pairs = {(t.params["scale"], t.run) for t in tasks}
        assert len(pairs) == len(tasks)

    def test_offset_seeding_replays_scenarios_across_cells(self):
        spec = SweepSpec(
            "p", pure_task, grid={"scale": [1, 2, 3]}, runs=4, base_seed=9, seeding="offset"
        )
        by_cell = {}
        for t in spec.tasks():
            by_cell.setdefault(t.params["scale"], []).append(t.seed)
        assert all(seeds == [9, 10, 11, 12] for seeds in by_cell.values())


class TestSerialParallelEquivalence:
    def _artifact(self, workers: int, task, grid, runs: int, seeding: str) -> str:
        spec = SweepSpec("equiv", task, grid=grid, runs=runs, seeding=seeding)
        outcome = run_sweep(spec, workers=workers)
        return ResultStore.encode(ResultStore.payload(outcome))

    def test_pure_task_identical_across_worker_counts(self):
        artifacts = {
            self._artifact(w, pure_task, {"scale": [1, 2, 5]}, 8, "derived")
            for w in (1, 2, 3, 5)
        }
        assert len(artifacts) == 1

    def test_simulation_task_identical_serial_vs_parallel(self):
        """The real thing: full cluster simulations fanned out."""
        artifacts = {
            self._artifact(w, availability_run, {"protocol": ["skq", "qtp1"]}, 4, "offset")
            for w in (1, 2, 4)
        }
        assert len(artifacts) == 1

    def test_chunksize_irrelevant(self):
        spec = SweepSpec("chunk", pure_task, grid={"scale": [1, 2]}, runs=10)
        outcomes = [
            run_sweep(spec, workers=2, chunksize=c) for c in (1, 3, 100)
        ]
        payloads = {ResultStore.encode(ResultStore.payload(o)) for o in outcomes}
        assert len(payloads) == 1

    def test_store_files_identical(self, tmp_path):
        spec = SweepSpec("stored", pure_task, grid={"scale": [2]}, runs=6)
        bytes_by_workers = []
        for w in (1, 3):
            store = ResultStore(tmp_path / f"w{w}")
            run_sweep(spec, workers=w, store=store)
            bytes_by_workers.append(store.path_for("stored").read_bytes())
        assert bytes_by_workers[0] == bytes_by_workers[1]
