"""Engine determinism properties: a sweep's output is a function of its
spec, never of its execution layout.

The multiprocess cases execute the *same* spec serially and under
several pool widths and require byte-identical artifacts — the property
the acceptance bar for the parallel engine rests on.  The hypothesis
cases pin down the seed derivation itself: total, deterministic,
injective across cells and runs, and independent of grid ordering.

The streaming cases extend the fixed point across *backends*: the
classic keep-everything path, every sink, and the per-chunk reducer
path must agree on rows, digests, and aggregates at every worker
count — and the exact accumulators must satisfy the merge law that
makes that possible (any partial grouping folds to the same summary).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import (
    CountAcc,
    JsonlSink,
    MeanAcc,
    MemorySink,
    NoopSink,
    QuantileDigest,
    ReducerSink,
    ResultStore,
    RowReducer,
    SweepSpec,
    derive_seed,
    load_stream,
    merge_digests,
    row_digest,
    run_sweep,
)
from repro.experiments.sweeps import availability_run

param_values = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b", "qtp1"]))
param_dicts = st.dictionaries(
    st.sampled_from(["protocol", "waves", "n", "mode"]), param_values, max_size=3
)


def pure_task(seed: int, scale: int) -> list[float]:
    """A cheap but seed-sensitive stand-in for a simulation run."""
    rng = random.Random(seed)
    return [rng.random() * scale for _ in range(3)]


class TestSeedDerivation:
    @given(st.integers(0, 2**31), param_dicts, st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, base, params, run):
        assert derive_seed(base, "s", params, run) == derive_seed(base, "s", params, run)

    @given(st.integers(0, 2**31), param_dicts, st.integers(0, 1000))
    @settings(max_examples=200, deadline=None)
    def test_key_order_irrelevant(self, base, params, run):
        reversed_params = dict(reversed(list(params.items())))
        assert derive_seed(base, "s", params, run) == derive_seed(
            base, "s", reversed_params, run
        )

    @given(st.integers(0, 2**20), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_runs_get_distinct_seeds(self, base, run_a, run_b):
        if run_a != run_b:
            assert derive_seed(base, "s", {}, run_a) != derive_seed(base, "s", {}, run_b)

    def test_cells_get_distinct_seeds(self):
        seeds = {
            derive_seed(0, "s", {"protocol": p, "waves": w}, 0)
            for p in ("2pc", "3pc", "skq", "qtp1", "qtp2")
            for w in range(20)
        }
        assert len(seeds) == 100


class TestSpecExpansion:
    @given(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, unique=True),
        st.integers(1, 5),
        st.integers(0, 100),
        st.sampled_from(["derived", "offset"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_tasks_cover_grid_exactly_once(self, values, runs, base, seeding):
        spec = SweepSpec(
            "p",
            pure_task,
            grid={"scale": list(range(len(values)))},
            runs=runs,
            base_seed=base,
            seeding=seeding,
        )
        tasks = spec.tasks()
        assert len(tasks) == spec.n_tasks == len(values) * runs
        assert [t.index for t in tasks] == list(range(len(tasks)))
        pairs = {(t.params["scale"], t.run) for t in tasks}
        assert len(pairs) == len(tasks)

    def test_offset_seeding_replays_scenarios_across_cells(self):
        spec = SweepSpec(
            "p", pure_task, grid={"scale": [1, 2, 3]}, runs=4, base_seed=9, seeding="offset"
        )
        by_cell = {}
        for t in spec.tasks():
            by_cell.setdefault(t.params["scale"], []).append(t.seed)
        assert all(seeds == [9, 10, 11, 12] for seeds in by_cell.values())


class TestSerialParallelEquivalence:
    def _artifact(self, workers: int, task, grid, runs: int, seeding: str) -> str:
        spec = SweepSpec("equiv", task, grid=grid, runs=runs, seeding=seeding)
        outcome = run_sweep(spec, workers=workers)
        return ResultStore.encode(ResultStore.payload(outcome))

    def test_pure_task_identical_across_worker_counts(self):
        artifacts = {
            self._artifact(w, pure_task, {"scale": [1, 2, 5]}, 8, "derived")
            for w in (1, 2, 3, 5)
        }
        assert len(artifacts) == 1

    def test_simulation_task_identical_serial_vs_parallel(self):
        """The real thing: full cluster simulations fanned out."""
        artifacts = {
            self._artifact(w, availability_run, {"protocol": ["skq", "qtp1"]}, 4, "offset")
            for w in (1, 2, 4)
        }
        assert len(artifacts) == 1

    def test_chunksize_irrelevant(self):
        spec = SweepSpec("chunk", pure_task, grid={"scale": [1, 2]}, runs=10)
        outcomes = [
            run_sweep(spec, workers=2, chunksize=c) for c in (1, 3, 100)
        ]
        payloads = {ResultStore.encode(ResultStore.payload(o)) for o in outcomes}
        assert len(payloads) == 1

    def test_store_files_identical(self, tmp_path):
        spec = SweepSpec("stored", pure_task, grid={"scale": [2]}, runs=6)
        bytes_by_workers = []
        for w in (1, 3):
            store = ResultStore(tmp_path / f"w{w}")
            run_sweep(spec, workers=w, store=store)
            bytes_by_workers.append(store.path_for("stored").read_bytes())
        assert bytes_by_workers[0] == bytes_by_workers[1]


def _metric_reducer() -> RowReducer:
    return RowReducer(
        (
            ("first", "0", MeanAcc()),
            ("first_digest", "0", QuantileDigest(0.0, 6.0)),
        )
    )


class TestStreamingFixedPoint:
    """serial == parallel == streaming, for every backend."""

    def _spec(self) -> SweepSpec:
        return SweepSpec("fp", pure_task, grid={"scale": [1, 2, 5]}, runs=6)

    def test_memory_sink_matches_default_path_bytes(self):
        for w in (1, 3):
            default = run_sweep(self._spec(), workers=w)
            sunk = run_sweep(self._spec(), workers=w, sink=MemorySink())
            assert ResultStore.encode(ResultStore.payload(sunk)) == ResultStore.encode(
                ResultStore.payload(default)
            )

    def test_digest_identical_across_backends_and_workers(self, tmp_path):
        digests = set()
        for w in (1, 2, 3):
            for make in (NoopSink, MemorySink, lambda: ReducerSink(_metric_reducer())):
                outcome = run_sweep(self._spec(), workers=w, sink=make())
                digests.add((outcome.aggregate["rows"], outcome.aggregate["digest"]))
            jsonl = JsonlSink(tmp_path / f"w{w}.jsonl.gz")
            run_sweep(self._spec(), workers=w, sink=jsonl)
            digests.add((jsonl.rows_emitted, jsonl.digest))
            reduced = run_sweep(self._spec(), workers=w, reduce=_metric_reducer())
            digests.add((reduced.aggregate["rows"], reduced.aggregate["digest"]))
        assert len(digests) == 1

    def test_stream_artifact_bytes_identical_across_workers(self, tmp_path):
        blobs = set()
        for w in (1, 2, 4):
            path = tmp_path / f"w{w}.jsonl.gz"
            run_sweep(self._spec(), workers=w, sink=JsonlSink(path))
            blobs.add(path.read_bytes())
        assert len(blobs) == 1

    def test_streamed_rows_equal_stored_rows(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_sweep(self._spec(), store=store)
        path = tmp_path / "rows.jsonl.gz"
        run_sweep(self._spec(), workers=2, sink=JsonlSink(path))
        _spec_summary, rows = load_stream(path)
        assert rows == store.load("fp")["results"]

    def test_simulation_task_streams_identically(self, tmp_path):
        """The real thing: cluster simulations through the sink path."""
        spec = SweepSpec(
            "sim", availability_run, grid={"protocol": ["skq", "qtp1"]}, runs=3,
            seeding="offset",
        )
        default = run_sweep(spec, workers=1)
        sunk = run_sweep(spec, workers=2, sink=MemorySink())
        assert sunk.results == default.results


class TestStreamingAggregatesMatchEager:
    @given(st.integers(0, 2**16), st.integers(1, 12), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_reduce_equals_fold_over_saved_artifact(self, base, runs, chunksize):
        import tempfile

        spec = SweepSpec(
            "agg", pure_task, grid={"scale": [1, 4]}, runs=runs, base_seed=base
        )
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            run_sweep(spec, store=store)
            eager = _metric_reducer()
            for row in store.load("agg")["results"]:
                eager.fold_row(row)
        streamed = run_sweep(spec, workers=2, chunksize=chunksize, reduce=_metric_reducer())
        assert streamed.aggregate == eager.summary()

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=40),
           st.integers(0, 39))
    @settings(max_examples=100, deadline=None)
    def test_mean_acc_merge_law(self, values, cut):
        cut = min(cut, len(values))
        serial = MeanAcc()
        for v in values:
            serial.add(v)
        left, right = MeanAcc(), MeanAcc()
        for v in values[:cut]:
            left.add(v)
        for v in values[cut:]:
            right.add(v)
        left.merge(right)
        assert left.summary() == serial.summary()
        assert left.total == serial.total  # exact, not approximate

    @given(st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=60),
           st.integers(0, 59))
    @settings(max_examples=100, deadline=None)
    def test_quantile_digest_merge_law(self, values, cut):
        cut = min(cut, len(values))
        serial = QuantileDigest(0.0, 10.0)
        for v in values:
            serial.add(v)
        left, right = QuantileDigest(0.0, 10.0), QuantileDigest(0.0, 10.0)
        for v in values[:cut]:
            left.add(v)
        for v in values[cut:]:
            right.add(v)
        left.merge(right)
        assert left.summary() == serial.summary()

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30),
           st.integers(0, 29))
    @settings(max_examples=50, deadline=None)
    def test_count_acc_merge_law(self, values, cut):
        cut = min(cut, len(values))
        serial = CountAcc()
        for v in values:
            serial.add(v)
        left, right = CountAcc(), CountAcc()
        for v in values[:cut]:
            left.add(v)
        for v in values[cut:]:
            right.add(v)
        left.merge(right)
        assert left.summary() == serial.summary()

    @given(st.lists(st.dictionaries(st.sampled_from(["i", "v"]), st.integers(0, 99),
                                    min_size=1), min_size=1, max_size=12),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_row_digest_sum_is_order_independent(self, rows, rng):
        forward = 0
        for row in rows:
            forward = merge_digests(forward, row_digest(row))
        shuffled = list(rows)
        rng.shuffle(shuffled)
        backward = 0
        for row in shuffled:
            backward = merge_digests(backward, row_digest(row))
        assert forward == backward
