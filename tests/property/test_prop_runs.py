"""Hypothesis-driven whole-run properties: atomicity and Fig. 6
conformance under arbitrary generated fault schedules.

Unlike the seed-indexed model-check (which replays a fixed generator),
hypothesis searches the fault-schedule space adversarially and shrinks
any counterexample it finds to a minimal schedule — the strongest
safety net in the suite.
"""

from hypothesis import given, settings, strategies as st

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.analysis.transitions import audit_transitions


@st.composite
def fault_plans(draw):
    """An arbitrary schedule of crashes, recoveries, partitions, heals."""
    plan = FailurePlan()
    n_events = draw(st.integers(min_value=1, max_value=6))
    sites = [1, 2, 3, 4]
    for __ in range(n_events):
        t = draw(st.floats(min_value=0.5, max_value=25.0))
        kind = draw(st.sampled_from(["crash", "recover", "partition", "heal"]))
        if kind == "crash":
            plan.crash(t, draw(st.sampled_from(sites)))
        elif kind == "recover":
            plan.recover(t, draw(st.sampled_from(sites)))
        elif kind == "heal":
            plan.heal(t)
        else:
            split = draw(st.integers(min_value=1, max_value=3))
            plan.partition(t, sites[:split], sites[split:])
    # always heal and recover at the end so liveness can be checked too
    plan.heal(60.0)
    for site in sites:
        plan.recover(draw(st.floats(min_value=61.0, max_value=70.0)), site)
    return plan


def run_with_plan(protocol: str, plan: FailurePlan) -> Cluster:
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    cluster = Cluster(catalog, protocol=protocol)
    cluster.update(origin=1, writes={"x": 42}, txn_id="T-prop")
    cluster.arm_failures(plan)
    cluster.run()
    return cluster


class TestWholeRunSafety:
    @given(fault_plans())
    @settings(max_examples=60, deadline=None)
    def test_qtp1_atomic_under_any_schedule(self, plan):
        cluster = run_with_plan("qtp1", plan)
        report = cluster.outcome("T-prop")
        assert report.atomic, plan.describe()
        assert report.illegal_transitions == 0

    @given(fault_plans())
    @settings(max_examples=60, deadline=None)
    def test_qtp2_atomic_under_any_schedule(self, plan):
        cluster = run_with_plan("qtp2", plan)
        report = cluster.outcome("T-prop")
        assert report.atomic, plan.describe()

    @given(fault_plans())
    @settings(max_examples=40, deadline=None)
    def test_transitions_conform_to_fig6(self, plan):
        cluster = run_with_plan("qtp1", plan)
        audit = audit_transitions([cluster.tracer])
        assert audit.conforms, audit.format_table()

    @given(fault_plans())
    @settings(max_examples=30, deadline=None)
    def test_committed_value_durable(self, plan):
        """If the run ends with the transaction committed anywhere, the
        value must be readable after the final heal + recoveries."""
        cluster = run_with_plan("qtp1", plan)
        report = cluster.outcome("T-prop")
        if report.outcome == "commit" and report.fully_terminated:
            assert cluster.read(2, "x").value == 42
