"""Property-based tests of the termination rules' safety invariants.

The central theorem (the paper's Lemmas 1-2 in decision-table form):
for any Gifford-legal vote assignment and any two *disjoint* sets of
polled sites (two partitions), the decisions the rules can reach are
never contradictory — one partition able to (try-)commit excludes the
other from (try-)aborting, given the cross-partition invariants the
protocols maintain.
"""

from hypothesis import given, settings, strategies as st

from repro.protocols.base import Decision
from repro.protocols.qtp.quorums import TerminationRule1, TerminationRule2
from repro.protocols.states import TxnState
from repro.replication.catalog import CatalogBuilder


@st.composite
def vote_assignments(draw):
    """A single item over n sites with a legal (r, w) pair."""
    n = draw(st.integers(min_value=2, max_value=7))
    votes = {s: draw(st.integers(min_value=1, max_value=3)) for s in range(1, n + 1)}
    v = sum(votes.values())
    w = draw(st.integers(min_value=v // 2 + 1, max_value=v))
    r = draw(st.integers(min_value=v - w + 1, max_value=v))
    catalog = CatalogBuilder().item("x", votes, r=r, w=w).build()
    return catalog


@st.composite
def split_states(draw, catalog):
    """Partition the item's sites into two disjoint groups with states.

    Group A gets states from {W, PC}; group B from {W, PA} — the
    states a run can be in after an interrupted prepare phase plus a
    partial termination round (no decided states, which trigger the
    adopt branches trivially).
    """
    sites = catalog.sites_of("x")
    assignment = draw(st.lists(st.booleans(), min_size=len(sites), max_size=len(sites)))
    group_a = {s for s, in_a in zip(sites, assignment) if in_a}
    group_b = set(sites) - group_a
    states_a = {
        s: draw(st.sampled_from([TxnState.W, TxnState.PC])) for s in group_a
    }
    states_b = {
        s: draw(st.sampled_from([TxnState.W, TxnState.PA])) for s in group_b
    }
    return states_a, states_b


@st.composite
def catalog_and_split(draw):
    catalog = draw(vote_assignments())
    states_a, states_b = draw(split_states(catalog))
    return catalog, states_a, states_b


COMMITTING = (Decision.COMMIT, Decision.TRY_COMMIT)
ABORTING = (Decision.ABORT, Decision.TRY_ABORT)


class TestRule1CrossPartitionSafety:
    @given(catalog_and_split())
    @settings(max_examples=300, deadline=None)
    def test_immediate_commit_excludes_remote_abort_completion(self, data):
        """If one partition can *immediately* commit (w(x) votes already
        in PC), no disjoint partition can complete an abort round: the
        r(x) votes it would need from non-PC sites cannot exist."""
        catalog, states_a, states_b = data
        rule = TerminationRule1(catalog)
        if rule.evaluate(["x"], states_a) is Decision.COMMIT and states_b:
            # every site of B is outside A's PC set; B's abort round
            # needs r(x) votes from B sites (all non-PC w.r.t. A's quorum)
            assert not rule.abort_round_ok(["x"], set(states_b))

    @given(catalog_and_split())
    @settings(max_examples=300, deadline=None)
    def test_abort_completion_excludes_remote_immediate_commit(self, data):
        catalog, states_a, states_b = data
        rule = TerminationRule1(catalog)
        if states_b and rule.abort_round_ok(["x"], set(states_b)):
            # B holds >= r votes, so A holds <= v - r < w votes: A can
            # never have w(x) votes in PC
            pc_a = {s for s, state in states_a.items() if state is TxnState.PC}
            assert catalog.votes("x", pc_a) < catalog.w("x")
            assert rule.evaluate(["x"], states_a) is not Decision.COMMIT

    @given(catalog_and_split())
    @settings(max_examples=300, deadline=None)
    def test_two_commit_rounds_cannot_both_complete_disjointly(self, data):
        """w + w > v: two disjoint site sets can never both hold w votes."""
        catalog, states_a, states_b = data
        rule = TerminationRule1(catalog)
        both = rule.commit_round_ok(["x"], set(states_a)) and rule.commit_round_ok(
            ["x"], set(states_b)
        )
        assert not both


class TestRule2CrossPartitionSafety:
    @given(catalog_and_split())
    @settings(max_examples=300, deadline=None)
    def test_commit_round_excludes_remote_abort_round(self, data):
        """Rule 2: commit round secures r(x) votes; abort round needs
        w(x) votes from the disjoint remainder; r + w > v forbids both."""
        catalog, states_a, states_b = data
        rule = TerminationRule2(catalog)
        both = rule.commit_round_ok(["x"], set(states_a)) and rule.abort_round_ok(
            ["x"], set(states_b)
        )
        assert not both

    @given(catalog_and_split())
    @settings(max_examples=300, deadline=None)
    def test_immediate_branches_disjoint_partitions_agree(self, data):
        catalog, states_a, states_b = data
        rule = TerminationRule2(catalog)
        d_a = rule.evaluate(["x"], states_a)
        d_b = rule.evaluate(["x"], states_b)
        # immediate decisions (not TRY) in disjoint partitions never conflict
        if d_a is Decision.COMMIT and states_b:
            assert d_b is not Decision.ABORT
        if d_a is Decision.ABORT and states_b:
            assert d_b is not Decision.COMMIT


class TestRuleTotality:
    @given(catalog_and_split())
    @settings(max_examples=200, deadline=None)
    def test_rules_always_return_a_decision(self, data):
        catalog, states_a, __ = data
        for rule in (TerminationRule1(catalog), TerminationRule2(catalog)):
            decision = rule.evaluate(["x"], states_a)
            assert isinstance(decision, Decision)

    @given(catalog_and_split())
    @settings(max_examples=200, deadline=None)
    def test_rules_are_pure(self, data):
        """Evaluating twice gives the same answer (no hidden state)."""
        catalog, states_a, __ = data
        rule = TerminationRule1(catalog)
        assert rule.evaluate(["x"], states_a) is rule.evaluate(["x"], states_a)

    @given(catalog_and_split())
    @settings(max_examples=200, deadline=None)
    def test_commit_state_dominates(self, data):
        """Adding a C site forces COMMIT under both rules (Rule 1 of §2)."""
        catalog, states_a, __ = data
        sites = catalog.sites_of("x")
        states = dict(states_a)
        states[sites[0]] = TxnState.C
        for rule in (TerminationRule1(catalog), TerminationRule2(catalog)):
            assert rule.evaluate(["x"], states) is Decision.COMMIT
