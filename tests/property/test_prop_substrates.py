"""Property-based tests of the substrates (scheduler, locks, catalog,
partition view, WAL recovery)."""

from hypothesis import given, settings, strategies as st

from repro.concurrency.locks import LockManager, LockMode
from repro.net.partitions import PartitionView
from repro.protocols.states import TxnState
from repro.replication.catalog import CatalogBuilder
from repro.sim.scheduler import Scheduler
from repro.storage.recovery import recover_protocol_states
from repro.storage.wal import WriteAheadLog


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, times):
        scheduler = Scheduler()
        fired = []
        for t in times:
            scheduler.call_at(t, lambda t=t: fired.append(scheduler.now))
        scheduler.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_run_until_splits_cleanly(self, times, deadline):
        scheduler = Scheduler()
        fired = []
        for t in times:
            scheduler.call_at(t, lambda t=t: fired.append(t))
        scheduler.run_until(deadline)
        assert all(t <= deadline for t in fired)
        scheduler.run()
        assert sorted(fired) == sorted(times)


class TestLockProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["T1", "T2", "T3"]),
                st.sampled_from(["x", "y"]),
                st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
                st.booleans(),  # release after?
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_exclusive_never_shares(self, ops):
        """At no point do two transactions hold an X lock on one item,
        nor an X and an S lock together."""
        lm = LockManager(1)
        for txn, item, mode, release in ops:
            lm.acquire(txn, item, mode)
            for check_item in ("x", "y"):
                holders = lm.holder_modes(check_item)
                x_holders = [t for t, m in holders.items() if m is LockMode.EXCLUSIVE]
                assert len(x_holders) <= 1
                if x_holders:
                    assert len(holders) == 1
            if release:
                lm.release_all(txn)

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_release_all_leaves_no_residue(self, data):
        lm = LockManager(1)
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["T1", "T2"]),
                    st.sampled_from(["x", "y", "z"]),
                ),
                max_size=20,
            )
        )
        for txn, item in ops:
            lm.try_acquire(txn, item, LockMode.EXCLUSIVE)
        lm.release_all("T1")
        lm.release_all("T2")
        for item in ("x", "y", "z"):
            assert not lm.is_locked(item)
            assert lm.waiting(item) == []


class TestCatalogProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=10),
            st.integers(min_value=1, max_value=4),
            min_size=1,
            max_size=8,
        ),
        st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_quorum_intersection(self, votes, data):
        """Any read quorum intersects any write quorum; any two write
        quorums intersect — the heart of Gifford's scheme."""
        v = sum(votes.values())
        w = data.draw(st.integers(min_value=v // 2 + 1, max_value=v))
        r = data.draw(st.integers(min_value=v - w + 1, max_value=v))
        catalog = CatalogBuilder().item("x", votes, r=r, w=w).build()
        sites = list(votes)
        subsets = data.draw(
            st.lists(st.lists(st.sampled_from(sites), unique=True), min_size=2, max_size=2)
        )
        a, b = (set(s) for s in subsets)
        if catalog.has_read_quorum("x", a) and catalog.has_write_quorum("x", b):
            assert a & b
        if catalog.has_write_quorum("x", a) and catalog.has_write_quorum("x", b):
            assert a & b

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=10),
            st.integers(min_value=1, max_value=4),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_votes_monotone_in_site_set(self, votes):
        v = sum(votes.values())
        catalog = CatalogBuilder().item("x", votes, r=v, w=v).build()
        sites = sorted(votes)
        running = 0
        for i in range(len(sites)):
            new = catalog.votes("x", sites[: i + 1])
            assert new >= running
            running = new
        assert running == v


class TestPartitionProperties:
    @given(
        st.sets(st.integers(min_value=1, max_value=12), min_size=1, max_size=12),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_components_partition_the_universe(self, sites, data):
        site_list = sorted(sites)
        k = data.draw(st.integers(min_value=0, max_value=len(site_list)))
        group = site_list[:k]
        view = PartitionView(site_list, [group] if group else None)
        seen = set()
        for comp in view.components:
            assert not (comp & seen)
            seen |= comp
        assert seen == sites

    @given(st.sets(st.integers(min_value=1, max_value=10), min_size=2, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_reachability_is_equivalence(self, sites):
        site_list = sorted(sites)
        half = site_list[: len(site_list) // 2]
        rest = site_list[len(site_list) // 2:]
        view = PartitionView(site_list, [half, rest])
        for a in site_list:
            assert view.reachable(a, a)
            for b in site_list:
                assert view.reachable(a, b) == view.reachable(b, a)
                for c in site_list:
                    if view.reachable(a, b) and view.reachable(b, c):
                        assert view.reachable(a, c)


_KINDS = ["begin", "vote-yes", "vote-no", "pc", "pa"]


class TestWalRecoveryProperties:
    @given(st.lists(st.sampled_from(_KINDS), min_size=1, max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_recovered_state_matches_last_anchor(self, kinds):
        """Whatever the log suffix, recovery lands on the state the last
        protocol record dictates."""
        wal = WriteAheadLog(1)
        wal.force("T", "begin")
        for kind in kinds:
            if kind == "begin":
                continue
            if kind == "vote-yes":
                wal.force("T", "vote", vote="yes")
            elif kind == "vote-no":
                wal.force("T", "vote", vote="no")
            else:
                wal.force("T", kind)
        state = recover_protocol_states(wal)["T"]
        last = wal.last_protocol_record("T")
        expected = {
            "begin": TxnState.Q,
            "pc": TxnState.PC,
            "pa": TxnState.PA,
        }.get(last.kind)
        if last.kind == "vote":
            expected = TxnState.W if last.payload["vote"] == "yes" else TxnState.Q
        assert state is expected
