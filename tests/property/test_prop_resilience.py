"""The crash-anywhere property: a sweep interrupted at ANY point and
resumed converges to an artifact byte-identical to the uninterrupted
run — across sinks, worker counts, and fault types.

This is the resilience layer's acceptance bar, the analogue of the
engine's serial==parallel fixed point.  The tier-1 cases sample the
crash grid (hypothesis picks crash rows and pool widths); the
``chaos``-marked cases sweep it exhaustively and add worker-kill
crashes — the weekly CI chaos job runs those.
"""

import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    ChaosPlan,
    CountAcc,
    JsonlSink,
    ReducerSink,
    RetryPolicy,
    RowReducer,
    SweepSpec,
    TeeSink,
    run_sweep,
)
from repro.engine.resilience import InjectedSinkError


def wobble_task(seed: int, gain: int = 1) -> dict:
    rng = random.Random(seed)
    return {"y": rng.random() * gain, "n": seed % 5}


N_TASKS = 18  # 2-point grid x 9 runs


def _spec(task) -> SweepSpec:
    return SweepSpec("crashprop", task, grid={"gain": [1, 3]}, runs=9, seeding="offset")


def _reference(tmp: Path) -> bytes:
    """Uninterrupted artifact for the chaos-wrapped spec (no faults)."""
    path = tmp / "ref.jsonl.gz"
    plan = ChaosPlan(tmp / "ref-state")
    run_sweep(_spec(plan.wrap(wobble_task)), sink=JsonlSink(path))
    return path.read_bytes()


def _crash_then_resume(tmp: Path, crash_row: int, workers: int) -> bytes:
    """Abort at the ``crash_row``-th sink write, then resume once."""
    path = tmp / "rows.jsonl.gz"
    plan = ChaosPlan(tmp / "state").fail_sink(crash_row)
    spec = _spec(plan.wrap(wobble_task))
    with pytest.raises(InjectedSinkError):
        run_sweep(
            spec, workers=workers, sink=plan.wrap_sink(JsonlSink(path)), on_error="retry"
        )
    run_sweep(spec, workers=workers, resume_from=path, on_error="retry")
    return path.read_bytes()


class TestCrashAnywhereResume:
    @given(crash_row=st.integers(0, N_TASKS - 1), workers=st.sampled_from([1, 2]))
    @settings(max_examples=10, deadline=None)
    def test_resumed_bytes_equal_uninterrupted(self, crash_row, workers):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            assert _crash_then_resume(tmp, crash_row, workers) == _reference(tmp)

    def test_double_crash_double_resume_converges(self, tmp_path):
        # crash, resume into a second crash, resume again: the artifact
        # still converges — resume composes with itself
        path = tmp_path / "rows.jsonl.gz"
        plan = ChaosPlan(tmp_path / "state").fail_sink(4).fail_sink(11)
        spec = _spec(plan.wrap(wobble_task))
        sink = plan.wrap_sink(JsonlSink(path))
        with pytest.raises(InjectedSinkError):
            run_sweep(spec, sink=sink, on_error="retry")
        with pytest.raises(InjectedSinkError):
            run_sweep(
                spec,
                sink=plan.wrap_sink(JsonlSink(path)),
                resume_from=path,
                on_error="retry",
            )
        run_sweep(spec, resume_from=path, on_error="retry")
        assert path.read_bytes() == _reference(tmp_path)

    def test_resume_through_a_tee_preserves_sibling_aggregates(self, tmp_path):
        def reducer():
            return RowReducer((("n", "n", CountAcc()),))

        ref_bytes = _reference(tmp_path)
        ref_plan = ChaosPlan(tmp_path / "agg-state")
        ref = run_sweep(_spec(ref_plan.wrap(wobble_task)), sink=ReducerSink(reducer()))

        path = tmp_path / "rows.jsonl.gz"
        plan = ChaosPlan(tmp_path / "state").fail_sink(9)
        spec = _spec(plan.wrap(wobble_task))
        with pytest.raises(InjectedSinkError):
            run_sweep(
                spec,
                sink=plan.wrap_sink(TeeSink(JsonlSink(path), ReducerSink(reducer()))),
                on_error="retry",
            )
        sibling = ReducerSink(reducer())
        run_sweep(
            spec,
            sink=TeeSink(JsonlSink(path), sibling),
            resume_from=path,
            on_error="retry",
        )
        assert path.read_bytes() == ref_bytes
        # the sibling reducer saw replayed + fresh rows exactly once each
        assert sibling.summary()["metrics"] == ref.aggregate["metrics"]
        assert sibling.digest == ref.aggregate["digest"]

    @given(
        poison=st.sets(st.integers(0, N_TASKS - 1), min_size=1, max_size=3),
        workers=st.sampled_from([1, 2]),
    )
    @settings(max_examples=8, deadline=None)
    def test_quarantine_is_deterministic_across_worker_counts(self, poison, workers):
        policy = RetryPolicy(max_attempts=2, backoff=0.0, quarantine=True)

        def poisoned_bytes(tmp: Path, w: int) -> tuple[bytes, list[int]]:
            plan = ChaosPlan(tmp / f"state-w{w}")
            for index in poison:
                plan.fail_task(index, attempts=5)  # never heals within policy
            path = tmp / f"rows-w{w}.jsonl.gz"
            outcome = run_sweep(
                _spec(plan.wrap(wobble_task)), workers=w, sink=JsonlSink(path),
                on_error=policy,
            )
            return path.read_bytes(), outcome.resilience["quarantined"]

        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            serial_bytes, serial_q = poisoned_bytes(tmp, 1)
            pooled_bytes, pooled_q = poisoned_bytes(tmp, workers)
            assert serial_q == pooled_q == sorted(poison)
            assert serial_bytes == pooled_bytes


@pytest.mark.chaos
class TestCrashAnywhereDeepGrid:
    """Exhaustive crash grid — every crash row at several pool widths,
    plus worker-kill crashes.  Minutes, not seconds: runs under
    ``-m chaos`` in the weekly CI chaos job."""

    def test_every_crash_row_every_worker_count(self):
        for workers in (1, 2, 3):
            for crash_row in range(N_TASKS):
                with tempfile.TemporaryDirectory() as tmp:
                    tmp = Path(tmp)
                    resumed = _crash_then_resume(tmp, crash_row, workers)
                    assert resumed == _reference(tmp), (
                        f"diverged at crash_row={crash_row} workers={workers}"
                    )

    def test_kill_any_worker_converges_without_resume(self):
        for workers in (2, 3):
            for victim in range(0, N_TASKS, 2):
                with tempfile.TemporaryDirectory() as tmp:
                    tmp = Path(tmp)
                    reference = _reference(tmp)
                    plan = ChaosPlan(tmp / "state").kill_worker(victim)
                    path = tmp / "rows.jsonl.gz"
                    outcome = run_sweep(
                        _spec(plan.wrap(wobble_task)),
                        workers=workers,
                        sink=JsonlSink(path),
                        on_error="retry",
                    )
                    assert outcome.resilience["respawns"] >= 1
                    assert path.read_bytes() == reference, (
                        f"diverged at victim={victim} workers={workers}"
                    )

    def test_kill_then_sink_crash_then_resume(self):
        for crash_row in range(2, N_TASKS, 4):
            with tempfile.TemporaryDirectory() as tmp:
                tmp = Path(tmp)
                reference = _reference(tmp)
                path = tmp / "rows.jsonl.gz"
                plan = (
                    ChaosPlan(tmp / "state")
                    .kill_worker((crash_row + 5) % N_TASKS)
                    .fail_sink(crash_row)
                )
                spec = _spec(plan.wrap(wobble_task))
                with pytest.raises(InjectedSinkError):
                    run_sweep(
                        spec,
                        workers=2,
                        sink=plan.wrap_sink(JsonlSink(path)),
                        on_error="retry",
                    )
                run_sweep(spec, workers=2, resume_from=path, on_error="retry")
                assert path.read_bytes() == reference, f"diverged at crash_row={crash_row}"
