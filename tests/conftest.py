"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.replication.catalog import CatalogBuilder, ReplicaCatalog
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


@pytest.fixture
def scheduler() -> Scheduler:
    """A fresh scheduler."""
    return Scheduler()


@pytest.fixture
def tracer() -> Tracer:
    """A fresh tracer."""
    return Tracer()


@pytest.fixture
def rng() -> RngRegistry:
    """A seeded RNG registry."""
    return RngRegistry(seed=42)


@pytest.fixture
def simple_catalog() -> ReplicaCatalog:
    """One item x at sites 1-3 with r=2, w=2."""
    return CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()


@pytest.fixture
def paper_catalog() -> ReplicaCatalog:
    """The Fig. 3 database: x at 1-4, y at 5-8, one vote each, r=2, w=3."""
    return (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
        .replicated_item("y", sites=[5, 6, 7, 8], r=2, w=3)
        .build()
    )
