"""Unit tests for the declarative workload spec."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.workload.generators import random_catalog, random_update, wan_catalog, wan_regions
from repro.workload.spec import WorkloadSpec


@pytest.fixture
def catalog():
    return random_catalog(random.Random(7), n_sites=8, n_items=6, replication=3)


class TestValidation:
    def test_defaults_build(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_txns": 0},
            {"popularity": "pareto"},
            {"zipf_s": 0.0},
            {"read_fraction": 1.5},
            {"footprint": (0, 2)},
            {"footprint": (3, 2)},
            {"arrival": "burst"},
            {"mean_spacing": 0.0},
            {"cross_region": -0.1},
            {"value_pool": 0},
            {"sampler": "rejection"},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_cross_region_needs_regions(self, catalog):
        spec = WorkloadSpec(cross_region=0.5)
        with pytest.raises(ConfigurationError):
            spec.compile(catalog)


class TestRateSchedule:
    OPEN = dict(arrival="open", rate=1.0, duration=60.0)

    @pytest.mark.parametrize(
        "schedule",
        [
            (),  # empty
            ((5.0, 1.0),),  # must start at offset 0
            ((0.0, 1.0), (10.0, 2.0), (10.0, 3.0)),  # offsets not increasing
            ((0.0, 1.0), (10.0, 0.0)),  # non-positive rate
        ],
    )
    def test_bad_schedules_rejected(self, schedule):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**self.OPEN, rate_schedule=schedule)

    def test_schedule_rejected_on_closed_specs(self):
        with pytest.raises(ConfigurationError, match="arrival='open'"):
            WorkloadSpec(n_txns=5, rate_schedule=((0.0, 1.0),))

    def test_rate_at_is_piecewise_constant(self, catalog):
        spec = WorkloadSpec(
            **self.OPEN, rate_schedule=((0.0, 1.0), (40.0, 6.0), (55.0, 1.0))
        )
        compiled = spec.compile(catalog)
        assert compiled.rate_at(0.0) == 1.0
        assert compiled.rate_at(39.9) == 1.0
        assert compiled.rate_at(40.0) == 6.0  # step boundary belongs to the step
        assert compiled.rate_at(54.9) == 6.0
        assert compiled.rate_at(55.0) == 1.0
        assert compiled.rate_at(1e9) == 1.0  # last step holds to the end

    def test_rate_at_without_schedule_is_constant(self, catalog):
        compiled = WorkloadSpec(**self.OPEN).compile(catalog)
        assert compiled.rate_at(0.0) == compiled.rate_at(1e6) == 1.0

    def test_next_gap_samples_the_scheduled_rate(self, catalog):
        # the same RNG state must yield a gap `surge_ratio` times
        # shorter inside the surge: one expovariate at the step's rate
        spec = WorkloadSpec(
            **self.OPEN, rate_schedule=((0.0, 1.0), (40.0, 6.0))
        )
        compiled = spec.compile(catalog)
        quiet = compiled.next_gap(random.Random(7), now=10.0)
        surge = compiled.next_gap(random.Random(7), now=45.0)
        assert surge == pytest.approx(quiet / 6.0)

    def test_constant_stream_ignores_the_clock(self, catalog):
        # no schedule: passing `now` must not perturb the draw sequence
        compiled = WorkloadSpec(**self.OPEN).compile(catalog)
        with_now = compiled.next_gap(random.Random(7), now=42.0)
        without = compiled.next_gap(random.Random(7))
        assert with_now == without


class TestLegacyStreamEquivalence:
    """The determinism contract: default shapes replay the historical
    generators draw-for-draw, so E18/E21 trajectories stay pinned."""

    def test_single_item_op_matches_choice_stream(self, catalog):
        compiled = WorkloadSpec().compile(catalog)
        for seed in range(40):
            a, b = random.Random(seed), random.Random(seed)
            item = a.choice(catalog.item_names)
            origin = a.choice(catalog.sites_of(item))
            op = compiled.next_op(b)
            assert (op.kind, op.items, op.origin) == ("update", (item,), origin)
            assert a.getstate() == b.getstate()

    def test_ranged_update_matches_random_update_stream(self, catalog):
        compiled = WorkloadSpec(footprint=(1, 3)).compile(catalog)
        for seed in range(40):
            a, b = random.Random(seed), random.Random(seed)
            assert random_update(a, catalog, max_items=3) == compiled.next_update(b)
            assert a.getstate() == b.getstate()

    def test_poisson_arrivals_match_arrival_times(self, catalog):
        from repro.workload.generators import arrival_times

        spec = WorkloadSpec(n_txns=20, mean_spacing=2.5)
        compiled = spec.compile(catalog)
        a, b = random.Random(3), random.Random(3)
        assert compiled.arrivals(b) == arrival_times(a, 20, mean_spacing=2.5)

    def test_fixed_arrivals_draw_nothing(self, catalog):
        spec = WorkloadSpec(n_txns=4, arrival="fixed", mean_spacing=5.0, start=1.0)
        rng = random.Random(0)
        state = rng.getstate()
        assert spec.compile(catalog).arrivals(rng) == [1.0, 6.0, 11.0, 16.0]
        assert rng.getstate() == state


class TestZipf:
    def test_skew_orders_by_rank(self, catalog):
        compiled = WorkloadSpec(popularity="zipf", zipf_s=1.5).compile(catalog)
        rng = random.Random(11)
        counts = {name: 0 for name in catalog.item_names}
        for __ in range(4000):
            counts[compiled.pick_item(rng)] += 1
        ordered = [counts[name] for name in catalog.item_names]
        assert ordered[0] == max(ordered)
        assert ordered[0] > 3 * ordered[-1]  # genuinely skewed

    def test_ranged_zipf_footprint_distinct_items(self, catalog):
        compiled = WorkloadSpec(popularity="zipf", footprint=(2, 4)).compile(catalog)
        rng = random.Random(5)
        for __ in range(100):
            items = compiled.pick_items(rng)
            assert 2 <= len(items) <= 4
            assert len(set(items)) == len(items)

    def test_deterministic_in_seed(self, catalog):
        compiled = WorkloadSpec(popularity="zipf", footprint=(1, 2)).compile(catalog)
        a = [compiled.next_update(random.Random(9)) for __ in range(5)]
        b = [compiled.next_update(random.Random(9)) for __ in range(5)]
        assert a == b

    def test_precomputed_total_matches_per_draw_sum(self, catalog):
        # the scan sampler's normalizer is summed once at compile time;
        # it must be the exact float sum() produced per draw historically
        compiled = WorkloadSpec(popularity="zipf", zipf_s=1.3).compile(catalog)
        assert compiled._weight_total == sum(compiled._weights)


class TestAliasSampler:
    def test_alias_table_is_a_distribution(self, catalog):
        from repro.workload.spec import build_alias_table

        weights = [1.0 / (r**1.2) for r in range(1, 10)]
        prob, alias = build_alias_table(weights)
        assert len(prob) == len(alias) == len(weights)
        assert all(0.0 <= p <= 1.0 + 1e-12 for p in prob)
        assert all(0 <= a < len(weights) for a in alias)
        # reconstructed cell masses must match the normalized weights
        n = len(weights)
        total = sum(weights)
        mass = [0.0] * n
        for i in range(n):
            mass[i] += prob[i] / n
            mass[alias[i]] += (1.0 - prob[i]) / n
        for i in range(n):
            assert mass[i] == pytest.approx(weights[i] / total)

    def test_alias_table_rejects_degenerate_weights(self):
        from repro.common.errors import ConfigurationError
        from repro.workload.spec import build_alias_table

        with pytest.raises(ConfigurationError):
            build_alias_table([])
        with pytest.raises(ConfigurationError):
            build_alias_table([0.0, 0.0])

    def test_alias_pick_is_skewed_like_scan(self, catalog):
        compiled = WorkloadSpec(
            popularity="zipf", zipf_s=1.5, sampler="alias"
        ).compile(catalog)
        rng = random.Random(11)
        counts = {name: 0 for name in catalog.item_names}
        for __ in range(4000):
            counts[compiled.pick_item(rng)] += 1
        ordered = [counts[name] for name in catalog.item_names]
        assert ordered[0] == max(ordered)
        assert ordered[0] > 3 * ordered[-1]

    def test_alias_footprint_distinct_items(self, catalog):
        compiled = WorkloadSpec(
            popularity="zipf", footprint=(2, 4), sampler="alias"
        ).compile(catalog)
        rng = random.Random(5)
        for __ in range(200):
            items = compiled.pick_items(rng)
            assert 2 <= len(items) <= 4
            assert len(set(items)) == len(items)

    def test_alias_full_catalog_footprint_terminates(self, catalog):
        # the degenerate regime the draw budget exists for: a footprint
        # spanning the whole catalog under skew must fall back to the
        # bounded scan loop instead of rejection-spinning on the tail
        n = len(catalog.item_names)
        compiled = WorkloadSpec(
            popularity="zipf", zipf_s=2.5, footprint=(n, n), sampler="alias"
        ).compile(catalog)
        rng = random.Random(13)
        for __ in range(20):
            picked = compiled.pick_items(rng)
            assert sorted(picked) == catalog.item_names  # a full permutation

    def test_alias_deterministic_in_seed(self, catalog):
        compiled = WorkloadSpec(
            popularity="zipf", footprint=(1, 3), sampler="alias"
        ).compile(catalog)
        a = [compiled.next_update(random.Random(9)) for __ in range(5)]
        b = [compiled.next_update(random.Random(9)) for __ in range(5)]
        assert a == b

    def test_alias_ignored_for_uniform_popularity(self, catalog):
        # uniform specs never build a table and replay the historical
        # choice/sample stream untouched
        scan = WorkloadSpec(footprint=(1, 2))
        alias = WorkloadSpec(footprint=(1, 2), sampler="alias")
        a = [scan.compile(catalog).next_update(random.Random(3)) for __ in range(8)]
        b = [alias.compile(catalog).next_update(random.Random(3)) for __ in range(8)]
        assert a == b

    def test_scan_default_unchanged_by_sampler_field(self, catalog):
        # adding the sampler knob must not shift the default stream
        compiled = WorkloadSpec(popularity="zipf", zipf_s=1.5).compile(catalog)
        assert compiled._alias_prob is None
        assert compiled.spec.sampler == "scan"


class TestReadMix:
    def test_zero_read_fraction_draws_nothing_extra(self, catalog):
        spec = WorkloadSpec()  # read_fraction == 0
        compiled = spec.compile(catalog)
        rng = random.Random(2)
        ops = [compiled.next_op(rng) for __ in range(50)]
        assert all(op.kind == "update" for op in ops)

    def test_read_fraction_produces_reads(self, catalog):
        compiled = WorkloadSpec(read_fraction=0.8).compile(catalog)
        rng = random.Random(2)
        kinds = [compiled.next_op(rng).kind for __ in range(200)]
        reads = kinds.count("read")
        assert 120 < reads < 200  # ~80% of 200
        for op in (compiled.next_op(rng) for __ in range(20)):
            assert len(op.items) == 1


class TestCrossRegion:
    def test_spanning_origin_hosts_no_copy(self):
        rng0 = random.Random(1)
        catalog = wan_catalog(rng0, n_regions=4, sites_per_region=4, n_items=6, region_replication=2)
        regions = wan_regions(4, 4)
        compiled = WorkloadSpec(cross_region=1.0).compile(catalog, regions)
        region_of = {s: i for i, region in enumerate(regions) for s in region}
        rng = random.Random(8)
        foreign = 0
        for __ in range(100):
            op = compiled.next_op(rng)
            hosts = catalog.sites_of(op.items[0])
            host_regions = {region_of[s] for s in hosts}
            if region_of[op.origin] not in host_regions:
                foreign += 1
        # every draw spans (prob 1.0) unless an item is replicated in
        # every region (then there is nowhere foreign to stand)
        assert foreign == 100

    def test_zero_cross_region_keeps_home_origins(self):
        rng0 = random.Random(1)
        catalog = wan_catalog(rng0, n_regions=3, sites_per_region=4, n_items=4)
        regions = wan_regions(3, 4)
        compiled = WorkloadSpec().compile(catalog, regions)
        rng = random.Random(4)
        for __ in range(50):
            op = compiled.next_op(rng)
            assert op.origin in catalog.sites_of(op.items[0])
