"""Unit tests for the persistent-pool sweep executor."""

from repro.engine.executor import (
    SweepRunner,
    clear_worker_cache,
    run_sweep,
    shared_runner,
    shutdown_shared_runners,
    worker_cache,
)
from repro.engine.spec import SweepSpec
from repro.bench.cases import warm_pool_probe


def _spec(name: str, runs: int = 4) -> SweepSpec:
    return SweepSpec(
        name=name,
        task=warm_pool_probe,
        grid={},
        runs=runs,
        fixed={"n_events": 50},
    )


class TestSweepRunner:
    def test_matches_serial_results(self):
        serial = run_sweep(_spec("probe"), workers=1)
        with SweepRunner(workers=2) as runner:
            warm = runner.run_sweep(_spec("probe"))
        assert warm.results == serial.results
        assert warm.spec == serial.spec

    def test_one_pool_across_many_sweeps(self):
        with SweepRunner(workers=2) as runner:
            outcomes = [runner.run_sweep(_spec(f"s{i}")) for i in range(4)]
            assert runner.sweeps_run == 4
            assert runner.pools_created <= 1  # 0 when pooling is unavailable
        assert [len(o.results) for o in outcomes] == [4, 4, 4, 4]

    def test_serial_runner_never_pools(self):
        runner = SweepRunner(workers=1)
        outcome = runner.run_sweep(_spec("serial"))
        assert runner.pools_created == 0
        assert outcome.results == run_sweep(_spec("serial")).results
        runner.close()

    def test_close_is_idempotent(self):
        runner = SweepRunner(workers=2)
        runner.run_sweep(_spec("x", runs=2))
        runner.close()
        runner.close()
        # a closed runner can still execute, serially or on a fresh pool
        assert len(runner.run_sweep(_spec("y", runs=2)).results) == 2
        runner.close()

    def test_store_is_saved(self, tmp_path):
        from repro.engine.store import ResultStore

        store = ResultStore(tmp_path)
        with SweepRunner(workers=1) as runner:
            runner.run_sweep(_spec("stored"), store=store)
        assert store.load("stored")["spec"]["name"] == "stored"


class TestPersistentPoolFlag:
    def test_run_sweep_routes_through_shared_runner(self):
        try:
            outcome = run_sweep(_spec("flagged"), workers=2, persistent_pool=True)
            assert shared_runner(2).sweeps_run >= 1
            assert outcome.results == run_sweep(_spec("flagged"), workers=1).results
        finally:
            shutdown_shared_runners()

    def test_shared_runner_is_per_worker_count(self):
        try:
            assert shared_runner(2) is shared_runner(2)
            assert shared_runner(2) is not shared_runner(3)
        finally:
            shutdown_shared_runners()


class TestSharedRunnerShutdown:
    def test_shutdown_is_idempotent(self):
        runner = shared_runner(2)
        runner.run_sweep(_spec("cleanup", runs=2))
        shutdown_shared_runners()
        # second (and third) calls find an empty registry and do nothing
        shutdown_shared_runners()
        shutdown_shared_runners()
        # the registry really was drained, not just closed in place
        assert shared_runner(2) is not runner
        shutdown_shared_runners()

    def test_shutdown_registered_with_atexit(self):
        # interrupted runs (SIGINT mid-sweep) must not leak pool
        # semaphores: the hook is registered at *import* time, so a
        # bare `import` + exit closes whatever runners exist — proven
        # in a subprocess, where interpreter exit actually happens
        import subprocess
        import sys

        code = (
            "import repro.engine.executor as ex\n"
            "class Probe:\n"
            "    def close(self):\n"
            "        print('RUNNER-CLOSED-AT-EXIT', flush=True)\n"
            "ex._SHARED_RUNNERS[2] = Probe()\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "RUNNER-CLOSED-AT-EXIT" in proc.stdout

    def test_shutdown_tolerates_a_failing_runner(self):
        class ExplodingRunner:
            def close(self):
                raise RuntimeError("pool teardown failed")

        from repro.engine.executor import _SHARED_RUNNERS

        try:
            _SHARED_RUNNERS[99] = ExplodingRunner()
            real = shared_runner(2)
            shutdown_shared_runners()  # must not raise, must drain both
            assert _SHARED_RUNNERS == {}
            assert real._pool is None
        finally:
            _SHARED_RUNNERS.clear()


class TestWorkerCache:
    def test_builds_once_per_key(self):
        clear_worker_cache()
        calls = []

        def build():
            calls.append(1)
            return {"value": len(calls)}

        first = worker_cache(("k",), build)
        second = worker_cache(("k",), build)
        assert first is second
        assert calls == [1]
        assert worker_cache(("other",), build) is not first
        clear_worker_cache()
