"""Unit tests for the resilience layer: retry policies, failure
manifests, the chaos harness, and the quarantine/provenance plumbing.

Worker-kill recovery and the crash-anywhere resume property live in
``tests/integration/test_chaos_recovery.py`` and
``tests/property/test_prop_resilience.py`` — this module covers the
value objects and the serial-path semantics."""

import gzip
import json

import pytest

from repro.common.errors import StoreError
from repro.engine import (
    ChaosPlan,
    FailureManifest,
    JsonlSink,
    MemorySink,
    ResultStore,
    RetryPolicy,
    SweepSpec,
    TaskFailure,
    load_stream,
    resolve_policy,
    run_sweep,
)
from repro.engine.resilience import (
    CHAOS_KILL_EXIT,
    MANIFEST_KIND,
    MANIFEST_SCHEMA,
    InjectedFault,
    InjectedSinkError,
)


def steady_task(seed: int) -> int:
    return seed * 2


def flaky_task(seed: int) -> int:
    """Fails on seed 2 — with seeding="offset" that is task index 2."""
    if seed == 2:
        raise ValueError("flaky cell")
    return seed


def _spec(name: str = "res", runs: int = 6, task=steady_task) -> SweepSpec:
    return SweepSpec(name=name, task=task, grid={}, runs=runs, seeding="offset")


class TestRetryPolicy:
    def test_defaults_are_bounded(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert not policy.quarantine
        assert policy.backoff_cap >= policy.backoff

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="negative"):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError, match="negative"):
            RetryPolicy(backoff_cap=-1.0)
        with pytest.raises(ValueError, match="respawn_limit"):
            RetryPolicy(respawn_limit=-1)

    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(backoff=0.1, backoff_cap=0.35)
        assert [policy.delay(k) for k in (1, 2, 3, 4)] == [0.1, 0.2, 0.35, 0.35]

    def test_zero_backoff_means_immediate(self):
        assert RetryPolicy(backoff=0.0).delay(1) == 0.0
        assert RetryPolicy(backoff=0.0).delay(9) == 0.0

    def test_policy_is_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_attempts = 7


class TestResolvePolicy:
    def test_none_and_raise_mean_legacy(self):
        assert resolve_policy(None) is None
        assert resolve_policy("raise") is None

    def test_shorthands(self):
        assert resolve_policy("retry") == RetryPolicy()
        assert resolve_policy("quarantine") == RetryPolicy(quarantine=True)

    def test_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=5)
        assert resolve_policy(policy) is policy

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            resolve_policy("shrug")


class TestFailureManifest:
    def _failure(self, index: int = 3) -> TaskFailure:
        return TaskFailure(
            index=index,
            params={"p": 1},
            run=0,
            seed=index,
            attempts=3,
            error="ValueError",
            message="flaky cell",
        )

    def test_payload_shape_and_sorted_indices(self):
        manifest = FailureManifest("s", [self._failure(9), self._failure(2)])
        payload = manifest.payload()
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["kind"] == MANIFEST_KIND
        assert [r["index"] for r in payload["quarantined"]] == [2, 9]
        assert manifest.indices() == [2, 9]

    def test_save_load_roundtrip_is_canonical(self, tmp_path):
        manifest = FailureManifest("s", [self._failure()])
        path = manifest.save(tmp_path / "failures.json")
        again = FailureManifest.load(path)
        assert again.sweep == "s"
        assert again.records == manifest.records
        # canonical bytes: saving the reload reproduces the file exactly
        twin = again.save(tmp_path / "twin.json")
        assert twin.read_bytes() == path.read_bytes()

    def test_load_rejects_foreign_and_stale_documents(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(StoreError, match="cannot read"):
            FailureManifest.load(missing)
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(StoreError, match="not a sweep failure manifest"):
            FailureManifest.load(foreign)
        stale = tmp_path / "stale.json"
        stale.write_text(
            json.dumps({"kind": MANIFEST_KIND, "schema": MANIFEST_SCHEMA + 1})
        )
        with pytest.raises(StoreError, match="schema"):
            FailureManifest.load(stale)


class TestChaosPlan:
    def test_chaining_and_len(self, tmp_path):
        plan = ChaosPlan(tmp_path).kill_worker(7).fail_task(12, attempts=2).fail_sink(30)
        assert len(plan) == 3

    def test_describe_sorted_by_coordinate(self, tmp_path):
        plan = ChaosPlan(tmp_path).fail_sink(30).fail_task(12).kill_worker(7)
        lines = plan.describe().splitlines()
        assert lines[0] == "at=7: KillWorker(index=7)"
        assert lines[1] == "at=12: FailTask(index=12, attempts=1)"
        assert lines[2] == "at=30: FailSink(row=30)"

    def test_fail_task_validates_attempts(self, tmp_path):
        with pytest.raises(ValueError, match="attempts"):
            ChaosPlan(tmp_path).fail_task(1, attempts=0)

    def test_claim_fires_exactly_once(self, tmp_path):
        plan = ChaosPlan(tmp_path)
        assert plan.claim("kill-3") is True
        assert plan.claim("kill-3") is False
        # a second plan over the same state_dir sees the same claims
        assert ChaosPlan(tmp_path).claim("kill-3") is False

    def test_claim_all_preclaims_every_marker(self, tmp_path):
        plan = ChaosPlan(tmp_path).kill_worker(1).fail_task(2, attempts=2).fail_sink(3)
        plan.claim_all()
        assert plan.claim("kill-1") is False
        assert plan.claim("fail-2-0") is False
        assert plan.claim("fail-2-1") is False
        assert plan.claim("sink-3") is False

    def test_wrapped_task_keeps_spec_summary_stable(self, tmp_path):
        a = ChaosPlan(tmp_path / "a").wrap(steady_task)
        b = ChaosPlan(tmp_path / "b").wrap(steady_task)
        assert a.__qualname__ == b.__qualname__ == "chaos[steady_task]"
        assert a.__module__ == steady_task.__module__
        assert a.needs_task_index

    def test_task_fault_fires_scheduled_count_then_heals(self, tmp_path):
        plan = ChaosPlan(tmp_path).fail_task(4, attempts=2)
        task = plan.wrap(steady_task)
        for _ in range(2):
            with pytest.raises(InjectedFault, match="task 4"):
                task(seed=4, task_index=4)
        assert task(seed=4, task_index=4) == 8  # healed after its quota
        assert task(seed=5, task_index=5) == 10  # other indices untouched

    def test_sink_fault_fires_once_and_delegates(self, tmp_path):
        from repro.engine.spec import RunResult

        plan = ChaosPlan(tmp_path).fail_sink(0)
        sink = plan.wrap_sink(MemorySink())
        sink.open({"name": "x"})
        row = RunResult(index=0, params={}, run=0, seed=0, value=1)
        with pytest.raises(InjectedSinkError, match="row 0"):
            sink.emit(row)
        sink.emit(row)  # marker claimed: second call delegates through
        assert sink.rows_emitted == 1
        assert sink.results[0].value == 1

    def test_sink_faults_abort_even_under_retry(self, tmp_path):
        # InjectedSinkError happens in the *parent*, not in a task:
        # on_error covers task execution only, so the sweep aborts and
        # leaves a resumable (truncated) artifact.
        path = tmp_path / "rows.jsonl.gz"
        plan = ChaosPlan(tmp_path / "chaos").fail_sink(1)
        with pytest.raises(InjectedSinkError):
            run_sweep(
                _spec(runs=4),
                sink=plan.wrap_sink(JsonlSink(path)),
                on_error="retry",
            )
        from repro.engine import scan_partial_stream

        assert sorted(scan_partial_stream(path)) == [0]

    def test_kill_exit_code_is_distinctive(self):
        assert CHAOS_KILL_EXIT not in (0, 1, 2)


class TestRetryAndQuarantineSemantics:
    def test_fault_free_resilient_run_matches_default(self):
        plain = run_sweep(_spec())
        resilient = run_sweep(_spec(), on_error="retry")
        assert resilient.results == plain.results
        assert plain.resilience is None  # legacy path untouched
        assert resilient.resilience["completed"] == len(plain.results)
        assert resilient.resilience["retried"] == 0
        assert resilient.resilience["quarantined"] == []

    def test_transient_fault_retries_to_identical_rows(self, tmp_path):
        plan = ChaosPlan(tmp_path).fail_task(2, attempts=2)
        spec = _spec(task=plan.wrap(steady_task))
        outcome = run_sweep(spec, on_error=RetryPolicy(max_attempts=3, backoff=0.0))
        reference = run_sweep(_spec(task=steady_task))
        assert [r.value for r in outcome.results] == [r.value for r in reference.results]
        assert outcome.resilience["retried"] == 2
        assert outcome.failures == []

    def test_exhausted_retries_raise_without_quarantine(self):
        with pytest.raises(ValueError, match="flaky cell"):
            run_sweep(
                _spec(task=flaky_task),
                on_error=RetryPolicy(max_attempts=2, backoff=0.0),
            )

    def test_quarantine_records_poison_cell_and_continues(self):
        outcome = run_sweep(
            _spec(task=flaky_task),
            on_error=RetryPolicy(max_attempts=2, backoff=0.0, quarantine=True),
        )
        assert [r.seed for r in outcome.results] == [0, 1, 3, 4, 5]
        assert outcome.resilience["quarantined"] == [2]
        (failure,) = outcome.failures
        assert failure.index == 2
        assert failure.attempts == 2
        assert failure.error == "ValueError"
        assert failure.message == "flaky cell"

    def test_quarantine_lands_in_jsonl_end_record(self, tmp_path):
        path = tmp_path / "rows.jsonl.gz"
        run_sweep(
            _spec(task=flaky_task),
            sink=JsonlSink(path),
            on_error=RetryPolicy(max_attempts=1, quarantine=True),
        )
        records = [
            json.loads(line)
            for line in gzip.decompress(path.read_bytes()).decode().splitlines()
        ]
        assert records[-1]["type"] == "end"
        assert records[-1]["quarantined"] == [2]
        # "records" counts every pre-end line (header + rows), matching
        # the fault-free artifact convention
        assert records[-1]["records"] == len(records) - 1
        spec_summary, rows = load_stream(path)
        assert [row["index"] for row in rows] == [0, 1, 3, 4, 5]

    def test_fault_free_end_record_has_no_quarantined_key(self, tmp_path):
        path = tmp_path / "clean.jsonl.gz"
        run_sweep(_spec(), sink=JsonlSink(path), on_error="retry")
        end = json.loads(
            gzip.decompress(path.read_bytes()).decode().splitlines()[-1]
        )
        assert "quarantined" not in end  # historical artifacts stay byte-stable

    def test_store_payload_carries_resilience(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(
            _spec(name="prov", task=flaky_task),
            store=store,
            on_error=RetryPolicy(max_attempts=1, quarantine=True),
        )
        payload = store.load("prov")
        assert payload["resilience"]["quarantined"] == [2]
        assert payload["resilience"]["resumed"] == 0

    def test_on_error_rejects_reduce(self):
        from repro.engine import CountAcc, RowReducer

        reducer = RowReducer((("v", "", CountAcc()),))
        with pytest.raises(ValueError, match="reduce"):
            run_sweep(_spec(), reduce=reducer, on_error="retry")

    def test_resume_from_requires_matching_jsonl_in_tree(self, tmp_path):
        with pytest.raises(ValueError, match="names no JsonlSink"):
            run_sweep(
                _spec(),
                sink=MemorySink(),
                resume_from=tmp_path / "elsewhere.jsonl.gz",
            )

    def test_stray_salvaged_indices_are_rejected(self, tmp_path):
        # a handcrafted artifact whose header matches the spec but whose
        # rows name indices the spec cannot contain: resuming it would
        # silently drop rows, so it must refuse instead
        from repro.engine import STREAM_KIND, STREAM_SCHEMA
        from repro.engine.store import jsonable

        spec = _spec(runs=4)
        summary = jsonable(spec.summary())
        lines = [
            json.dumps(
                {
                    "type": "header",
                    "schema": STREAM_SCHEMA,
                    "kind": STREAM_KIND,
                    "sweep": summary.get("name"),
                    "spec": summary,
                }
            ),
            json.dumps(
                {"type": "row", "index": 10, "params": {}, "run": 0, "seed": 10, "value": 20}
            ),
        ]
        path = tmp_path / "stray.jsonl.gz"
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode(), mtime=0))
        with pytest.raises(StoreError, match="outside"):
            run_sweep(spec, resume_from=path)
