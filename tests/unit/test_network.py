"""Unit tests for the network facade and node actors."""

import pytest

from repro.common.errors import SiteDownError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


class Recorder(Node):
    """Test node that records everything it receives."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.received = []
        self.on("test.ping", self.received.append)


@pytest.fixture
def net():
    scheduler = Scheduler()
    network = Network(scheduler, Tracer(), RngRegistry(0))
    nodes = {i: Recorder(i, network) for i in (1, 2, 3)}
    return scheduler, network, nodes


class TestDelivery:
    def test_message_delivered_after_delay(self, net):
        scheduler, network, nodes = net
        nodes[1].send(2, "test.ping", "T1")
        scheduler.run()
        assert len(nodes[2].received) == 1
        assert scheduler.now == 1.0  # FixedDelay(1) default

    def test_self_send_has_zero_delay(self, net):
        scheduler, network, nodes = net
        nodes[1].send(1, "test.ping")
        scheduler.run()
        assert len(nodes[1].received) == 1
        assert scheduler.now == 0.0

    def test_broadcast_excludes_self(self, net):
        scheduler, network, nodes = net
        nodes[1].broadcast([1, 2, 3], "test.ping")
        scheduler.run()
        assert len(nodes[1].received) == 0
        assert len(nodes[2].received) == 1
        assert len(nodes[3].received) == 1

    def test_unhandled_type_is_traced_not_raised(self, net):
        scheduler, network, nodes = net
        nodes[1].send(2, "test.unknown")
        scheduler.run()
        assert network.tracer.count("unhandled") == 1

    def test_duplicate_node_id_rejected(self, net):
        __, network, __nodes = net
        with pytest.raises(ValueError, match="duplicate"):
            Recorder(1, network)

    def test_duplicate_handler_rejected(self, net):
        __, __, nodes = net
        with pytest.raises(ValueError, match="duplicate handler"):
            nodes[1].on("test.ping", lambda m: None)


class TestDrops:
    def test_crashed_destination_drops(self, net):
        scheduler, network, nodes = net
        network.crash_site(2)
        nodes[1].send(2, "test.ping")
        scheduler.run()
        assert nodes[2].received == []
        assert network.dropped == 1

    def test_crashed_sender_cannot_send(self, net):
        __, network, nodes = net
        network.crash_site(1)
        with pytest.raises(SiteDownError):
            nodes[1].send(2, "test.ping")

    def test_partition_drops_at_send(self, net):
        scheduler, network, nodes = net
        network.set_partition([[1], [2, 3]])
        nodes[1].send(2, "test.ping")
        scheduler.run()
        assert nodes[2].received == []

    def test_partition_drops_in_flight(self, net):
        scheduler, network, nodes = net
        nodes[1].send(2, "test.ping")  # delivery due at t=1
        scheduler.call_at(0.5, network.set_partition, [[1], [2, 3]])
        scheduler.run()
        assert nodes[2].received == []
        drops = network.tracer.where(category="drop")
        assert drops[0].detail["reason"] == "partitioned-in-flight"

    def test_crash_in_flight_drops(self, net):
        scheduler, network, nodes = net
        nodes[1].send(2, "test.ping")
        scheduler.call_at(0.5, network.crash_site, 2)
        scheduler.run()
        assert nodes[2].received == []

    def test_link_loss_p1_severs(self, net):
        scheduler, network, nodes = net
        network.set_link_loss(1, 2, 1.0)
        nodes[1].send(2, "test.ping")
        nodes[2].send(1, "test.ping")  # reverse direction unaffected
        scheduler.run()
        assert nodes[2].received == []
        assert len(nodes[1].received) == 1

    def test_filter_drops_matching(self, net):
        scheduler, network, nodes = net
        network.add_filter(lambda m: m.dst == 3)
        nodes[1].send(2, "test.ping")
        nodes[1].send(3, "test.ping")
        scheduler.run()
        assert len(nodes[2].received) == 1
        assert nodes[3].received == []
        network.clear_filters()
        nodes[1].send(3, "test.ping")
        scheduler.run()
        assert len(nodes[3].received) == 1

    def test_heal_clears_loss_and_partition(self, net):
        scheduler, network, nodes = net
        network.set_partition([[1], [2, 3]])
        network.set_link_loss(1, 2, 1.0)
        network.heal()
        nodes[1].send(2, "test.ping")
        scheduler.run()
        assert len(nodes[2].received) == 1

    def test_invalid_loss_probability(self, net):
        __, network, __nodes = net
        with pytest.raises(ValueError):
            network.set_link_loss(1, 2, 1.5)


class TestReachability:
    def test_reachable_from_respects_partition(self, net):
        __, network, __nodes = net
        network.set_partition([[1, 2], [3]])
        assert network.reachable_from(1) == [1, 2]

    def test_reachable_from_excludes_crashed(self, net):
        __, network, __nodes = net
        network.crash_site(2)
        assert network.reachable_from(1) == [1, 3]

    def test_reachable_from_restricted_pool(self, net):
        __, network, __nodes = net
        assert network.reachable_from(1, among=[2, 3]) == [2, 3]

    def test_active_sites(self, net):
        __, network, __nodes = net
        network.crash_site(3)
        assert network.active_sites() == [1, 2]
        network.recover_site(3)
        assert network.active_sites() == [1, 2, 3]


class TestCrashRecovery:
    def test_crash_cancels_timers(self, net):
        scheduler, network, nodes = net
        fired = []
        nodes[1].set_timer(5.0, fired.append, "x")
        network.crash_site(1)
        scheduler.run()
        assert fired == []

    def test_timer_on_down_site_rejected(self, net):
        __, network, nodes = net
        network.crash_site(1)
        with pytest.raises(SiteDownError):
            nodes[1].set_timer(1.0, lambda: None)

    def test_observer_notified_on_partition_heal_recover(self, net):
        __, network, __nodes = net
        events = []
        network.subscribe(events.append)
        network.set_partition([[1], [2, 3]])
        network.heal()
        network.crash_site(1)  # crash alone does not notify
        network.recover_site(1)
        assert events == ["partition", "heal", "recover"]


class TestViewInterning:
    def test_repeated_layouts_reuse_one_view(self, net):
        __, network, __nodes = net
        network.set_partition([[1], [2, 3]])
        first = network.partition
        network.heal()
        network.set_partition(((1,), (2, 3)))  # tuple spelling, same layout
        assert network.partition is first

    def test_heals_reuse_one_view(self, net):
        __, network, __nodes = net
        network.heal()
        healed = network.partition
        network.set_partition([[1], [2, 3]])
        network.heal()
        assert network.partition is healed

    def test_register_invalidates_interned_views(self, net):
        __, network, __nodes = net
        network.set_partition([[1], [2, 3]])
        stale = network.partition
        Recorder(4, network)
        network.set_partition([[1], [2, 3]])
        assert network.partition is not stale
        assert network.partition.sites == frozenset([1, 2, 3, 4])
        # site 4 was in no group: a singleton component
        assert network.partition.component_of(4) == frozenset([4])

    def test_intern_disabled_builds_fresh_views(self):
        scheduler = Scheduler()
        network = Network(scheduler, Tracer(), RngRegistry(0), intern_views=False)
        for i in (1, 2, 3):
            Recorder(i, network)
        network.set_partition([[1], [2, 3]])
        first = network.partition
        network.heal()
        network.set_partition([[1], [2, 3]])
        assert network.partition is not first
        assert network.partition == first  # equal content, fresh object

    def test_interned_and_fresh_views_agree(self, net):
        __, network, __nodes = net
        other = Network(Scheduler(), Tracer(), RngRegistry(0), intern_views=False)
        for i in (1, 2, 3):
            Recorder(i, other)
        for groups in ([[1], [2, 3]], [[1, 2], [3]], [[1], [2], [3]]):
            network.set_partition(groups)
            other.set_partition(groups)
            assert network.partition == other.partition
            assert network.partition.sorted_components() == other.partition.sorted_components()


class TestFanoutFlyweight:
    def _network(self, flyweight):
        scheduler = Scheduler()
        network = Network(scheduler, Tracer(), RngRegistry(0), flyweight=flyweight)
        nodes = {i: Recorder(i, network) for i in (1, 2, 3)}
        return scheduler, network, nodes

    def test_stamps_deliver_like_messages(self):
        from repro.net.message import MessageStamp

        scheduler, network, nodes = self._network(flyweight=True)
        payload = {"k": 7}
        network.fanout(1, [2, 3], "test.ping", "T1", payload)
        scheduler.run()
        for node_id in (2, 3):
            (msg,) = nodes[node_id].received
            assert isinstance(msg, MessageStamp)
            assert (msg.src, msg.dst, msg.mtype, msg.txn) == (1, node_id, "test.ping", "T1")
            assert msg.payload is payload  # envelope shared, by contract
        ids = [nodes[2].received[0].msg_id, nodes[3].received[0].msg_id]
        assert ids[0] != ids[1]

    def test_legacy_flag_builds_full_messages(self):
        scheduler, network, nodes = self._network(flyweight=False)
        network.fanout(1, [2, 3], "test.ping", "T1")
        scheduler.run()
        assert all(type(n.received[0]) is Message for n in (nodes[2], nodes[3]))

    def test_counters_and_trace_identical_across_modes(self):
        tallies = []
        for flyweight in (False, True):
            scheduler, network, nodes = self._network(flyweight)
            network.fanout(1, [1, 2, 3, 9], "test.ping", "T1")  # 9 unknown
            network.crash_site(3)
            network.fanout(1, [2, 3], "test.ping", "T1")
            scheduler.run()
            tracer = network.tracer
            tallies.append(
                (
                    network.sent,
                    network.delivered,
                    network.dropped,
                    tracer.count("send"),
                    tracer.count("deliver"),
                    tracer.count("drop"),
                    len(nodes[2].received),
                )
            )
        assert tallies[0] == tallies[1]

    def test_slow_path_still_used_with_filters(self):
        # filters disable the fast path entirely; the flyweight never
        # bypasses the per-message fault evaluation
        scheduler, network, nodes = self._network(flyweight=True)
        network.add_filter(lambda m: m.dst == 2)
        network.fanout(1, [2, 3], "test.ping", "T1")
        scheduler.run()
        assert nodes[2].received == []
        assert len(nodes[3].received) == 1
        assert type(nodes[3].received[0]) is Message


class TestMessage:
    def test_family_prefix(self):
        msg = Message(1, 2, "qtp1.vote-req", "T1")
        assert msg.family == "qtp1"

    def test_msg_ids_unique(self):
        a = Message(1, 2, "x.y")
        b = Message(1, 2, "x.y")
        assert a.msg_id != b.msg_id

    def test_str_rendering(self):
        msg = Message(1, 2, "x.y", "T9", {"k": 1})
        assert "1->2" in str(msg) and "T9" in str(msg)
