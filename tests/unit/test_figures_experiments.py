"""Unit tests for the figure-level experiment runners (E5, E6/E9)."""

from repro.experiments.figures import (
    DECISION_MATRIX_CASES,
    run_decision_matrix,
    run_fig4,
)


class TestFig4Runner:
    def test_argument_has_five_steps(self):
        result = run_fig4(4)
        assert len(result.argument) == 5

    def test_format_includes_table_and_steps(self):
        text = run_fig4(4).format()
        assert "PS1" in text
        assert "impossibility" in text
        assert "1." in text and "5." in text


class TestDecisionMatrixRunner:
    def test_rows_cover_all_cases(self):
        matrix = run_decision_matrix()
        assert len(matrix.rows) == len(DECISION_MATRIX_CASES)
        assert matrix.rules == [
            "qtp-termination-1",
            "qtp-termination-2",
            "skeen-site-quorum",
        ]

    def test_every_cell_is_a_decision_value(self):
        matrix = run_decision_matrix()
        valid = {"commit", "abort", "try-commit", "try-abort", "block"}
        for __, decisions in matrix.rows:
            assert set(decisions) <= valid

    def test_format_aligns_rules(self):
        text = run_decision_matrix().format()
        assert "qtp-termination-1" in text
        assert "G1 of Example 1" in text

    def test_custom_rules(self):
        from repro.protocols.threepc import ThreePCTerminationRule

        matrix = run_decision_matrix([ThreePCTerminationRule()])
        assert matrix.rules == ["3pc-skeen"]
        # 3PC's rule runs a prepare round (try-commit) whenever a
        # committable state is present, and commits unconditionally
        # only on an actual C witness
        rows = dict(matrix.rows)
        assert rows["full partition, all in PC"] == ["try-commit"]
        assert rows["one participant committed"] == ["commit"]
