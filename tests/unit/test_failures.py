"""Unit tests for the failure plan and injector."""

from repro.net.network import Network
from repro.net.node import Node
from repro.sim.failures import FailureInjector, FailurePlan
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


def make_net():
    scheduler = Scheduler()
    network = Network(scheduler, Tracer(), RngRegistry(0))
    for i in (1, 2, 3, 4):
        Node(i, network)
    return scheduler, network


class TestPlanBuilding:
    def test_chaining(self):
        plan = FailurePlan().crash(1.0, 2).recover(5.0, 2).heal(9.0)
        assert len(plan) == 3

    def test_describe_sorted_by_time(self):
        plan = FailurePlan().heal(9.0).crash(1.0, 2)
        lines = plan.describe().splitlines()
        assert lines[0].startswith("t=1")

    def test_sever_both_adds_two_actions(self):
        plan = FailurePlan().sever_both(1.0, 2, 3)
        assert len(plan) == 2


class TestInjection:
    def test_crash_and_recover_applied_at_times(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().crash(2.0, 1).recover(5.0, 1))
        scheduler.run_until(3.0)
        assert not network.node(1).alive
        scheduler.run()
        assert network.node(1).alive
        assert len(injector.applied) == 2

    def test_partition_and_heal(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().partition(1.0, [1, 2], [3, 4]).heal(4.0)
        )
        scheduler.run_until(2.0)
        assert not network.partition.reachable(1, 3)
        scheduler.run()
        assert network.partition.reachable(1, 3)

    def test_sever_applied(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(FailurePlan().sever(1.0, 1, 2))
        scheduler.run()
        # directed loss installed: 1 -> 2 drops, 2 -> 1 passes
        assert network._link_loss == {(1, 2): 1.0}

    def test_events_are_traced(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().crash(1.0, 1).partition(2.0, [1, 2], [3, 4])
        )
        scheduler.run()
        assert network.tracer.count("crash") == 1
        assert network.tracer.count("partition") == 1
