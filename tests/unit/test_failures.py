"""Unit tests for the failure plan and injector."""

import pytest

from repro.net.network import Network
from repro.net.node import Node
from repro.sim.failures import (
    FailureInjector,
    FailurePlan,
    FlapLink,
    JoinSite,
    LeaveSite,
)
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


def make_net():
    scheduler = Scheduler()
    network = Network(scheduler, Tracer(), RngRegistry(0))
    for i in (1, 2, 3, 4):
        Node(i, network)
    return scheduler, network


class TestPlanBuilding:
    def test_chaining(self):
        plan = FailurePlan().crash(1.0, 2).recover(5.0, 2).heal(9.0)
        assert len(plan) == 3

    def test_describe_sorted_by_time(self):
        plan = FailurePlan().heal(9.0).crash(1.0, 2)
        lines = plan.describe().splitlines()
        assert lines[0].startswith("t=1")

    def test_sever_both_adds_two_actions(self):
        plan = FailurePlan().sever_both(1.0, 2, 3)
        assert len(plan) == 2

    def test_describe_full_format(self):
        # one line per action, t= prefix from the %g-rendered time, the
        # dataclass repr after the colon — the exact log format the
        # experiment harness prints alongside results
        plan = FailurePlan().crash(1.5, 2).heal(10.0)
        lines = plan.describe().splitlines()
        assert lines == [
            "t=1.5: CrashSite(time=1.5, site=2)",
            "t=10: HealNetwork(time=10.0)",
        ]

    def test_describe_empty_plan(self):
        assert FailurePlan().describe() == ""

    def test_describe_stable_under_equal_times(self):
        # sorted() is stable: same-time actions keep insertion order
        plan = FailurePlan().crash(1.0, 3).recover(1.0, 2)
        lines = plan.describe().splitlines()
        assert "CrashSite" in lines[0] and "RecoverSite" in lines[1]

    def test_join_freezes_copies_sorted(self):
        plan = FailurePlan().join(2.0, 9, copies={"y": 2, "x": 1}, near=3)
        action = plan.actions[0]
        assert isinstance(action, JoinSite)
        # mapping frozen to a sorted tuple: hashable, deterministic
        # regardless of dict insertion order
        assert action.copies == (("x", 1), ("y", 2))
        assert action.near == 3

    def test_join_without_copies_is_pure_coordinator(self):
        plan = FailurePlan().join(2.0, 9)
        assert plan.actions[0].copies == ()
        assert plan.actions[0].near is None

    def test_describe_renders_join_and_link_loss(self):
        plan = FailurePlan().sever(1.0, 2, 3, p=0.25).join(4.0, 9, copies={"x": 1}, near=2)
        lines = plan.describe().splitlines()
        assert lines == [
            "t=1: SetLinkLoss(time=1.0, src=2, dst=3, p=0.25)",
            "t=4: JoinSite(time=4.0, site=9, copies=(('x', 1),), near=2)",
        ]

    def test_describe_renders_gray_and_leave_actions(self):
        plan = (
            FailurePlan()
            .degrade(1.0, 4, 6.0)
            .flap(2.0, 2, 3, 6.0)
            .restore(5.0, 4)
            .leave(7.5, 4)
        )
        lines = plan.describe().splitlines()
        assert lines == [
            "t=1: DegradeSite(time=1.0, site=4, factor=6.0)",
            "t=2: FlapLink(time=2.0, src=2, dst=3, period=6.0, duty=0.5, cycles=3)",
            "t=5: RestoreSite(time=5.0, site=4)",
            "t=7.5: LeaveSite(time=7.5, site=4)",
        ]

    def test_flap_and_leave_builders(self):
        plan = FailurePlan().flap(1.0, 2, 3, 4.0, duty=0.25, cycles=5).leave(9.0, 2)
        flap, leave = plan.actions
        assert flap == FlapLink(1.0, 2, 3, 4.0, 0.25, 5)
        assert leave == LeaveSite(9.0, 2)


class TestInjection:
    def test_crash_and_recover_applied_at_times(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().crash(2.0, 1).recover(5.0, 1))
        scheduler.run_until(3.0)
        assert not network.node(1).alive
        scheduler.run()
        assert network.node(1).alive
        assert len(injector.applied) == 2

    def test_partition_and_heal(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().partition(1.0, [1, 2], [3, 4]).heal(4.0)
        )
        scheduler.run_until(2.0)
        assert not network.partition.reachable(1, 3)
        scheduler.run()
        assert network.partition.reachable(1, 3)

    def test_sever_applied(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(FailurePlan().sever(1.0, 1, 2))
        scheduler.run()
        # directed loss installed: 1 -> 2 drops, 2 -> 1 passes
        assert network._link_loss == {(1, 2): 1.0}

    def test_link_loss_zero_restores_the_link(self):
        # p=0.0 is "heal this link": the entry is removed outright, not
        # kept as a pointless never-drops record
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().sever(1.0, 1, 2, p=0.7).sever(2.0, 1, 2, p=0.0)
        )
        scheduler.run()
        assert network._link_loss == {}

    def test_link_loss_probability_validated(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().sever(1.0, 1, 2, p=1.5))
        with pytest.raises(ValueError, match="outside"):
            scheduler.run()
        # the invalid action must not be recorded as applied
        assert injector.applied == []

    def test_join_without_membership_handler_raises(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)  # no membership=
        injector.arm(FailurePlan().join(1.0, 9))
        with pytest.raises(TypeError, match="membership handler"):
            scheduler.run()
        assert injector.applied == []

    def test_join_delegates_to_membership_handler(self):
        scheduler, network = make_net()
        seen: list[JoinSite] = []
        injector = FailureInjector(scheduler, network, membership=seen.append)
        injector.arm(FailurePlan().join(3.0, 9, copies={"x": 1}, near=2))
        scheduler.run()
        assert [a.site for a in seen] == [9]
        assert seen[0].copies == (("x", 1),)
        # applied only after the handler succeeded
        assert injector.applied == seen

    def test_degrade_and_restore_applied_at_times(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().degrade(2.0, 1, 6.0).restore(5.0, 1))
        scheduler.run_until(3.0)
        assert network._degraded == {1: 6.0}
        scheduler.run()
        assert network._degraded == {}
        assert len(injector.applied) == 2
        assert network.tracer.count("degrade") == 1
        assert network.tracer.count("restore") == 1

    def test_degrade_factor_one_is_an_exact_noop(self):
        # factor=1.0 removes the overlay entry outright so the delivery
        # hot path never multiplies by 1.0
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().degrade(1.0, 2, 3.0).degrade(2.0, 2, 1.0)
        )
        scheduler.run()
        assert network._degraded == {}

    def test_degrade_unknown_site_not_recorded_applied(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().degrade(1.0, 99, 2.0))
        with pytest.raises(ValueError, match="unknown site"):
            scheduler.run()
        assert injector.applied == []

    def test_degrade_factor_must_be_positive(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(FailurePlan().degrade(1.0, 1, 0.0))
        with pytest.raises(ValueError, match="positive"):
            scheduler.run()

    def test_flap_oscillates_then_heals_for_good(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().flap(1.0, 1, 2, period=2.0, duty=0.5, cycles=2))
        scheduler.run_until(1.5)  # first sever edge at t=1
        assert network._link_loss == {(1, 2): 1.0}
        scheduler.run_until(2.5)  # healed at t=2 (duty * period after)
        assert network._link_loss == {}
        scheduler.run_until(3.5)  # second cycle severs at t=3
        assert network._link_loss == {(1, 2): 1.0}
        scheduler.run()  # bounded: healed at t=4 and stays healed
        assert network._link_loss == {}
        # the plan action is recorded once; its sever/heal sub-events are
        # implementation detail, not part of the applied history
        assert injector.applied == [FlapLink(1.0, 1, 2, 2.0, 0.5, 2)]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(period=0.0), "period"),
            (dict(period=2.0, duty=0.0), "duty"),
            (dict(period=2.0, duty=1.5), "duty"),
            (dict(period=2.0, cycles=0), "cycles"),
        ],
    )
    def test_flap_parameters_validated(self, kwargs, match):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().flap(1.0, 1, 2, **kwargs))
        with pytest.raises(ValueError, match=match):
            scheduler.run()
        assert injector.applied == []

    def test_leave_without_membership_handler_raises(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)  # no membership=
        injector.arm(FailurePlan().leave(1.0, 2))
        with pytest.raises(TypeError, match="membership handler"):
            scheduler.run()
        assert injector.applied == []

    def test_leave_delegates_to_membership_handler(self):
        scheduler, network = make_net()
        seen: list[LeaveSite] = []
        injector = FailureInjector(scheduler, network, membership=seen.append)
        injector.arm(FailurePlan().leave(3.0, 2))
        scheduler.run()
        assert [a.site for a in seen] == [2]
        assert injector.applied == seen

    def test_deregister_cleans_overlays_touching_the_site(self):
        scheduler, network = make_net()
        network.degrade_site(2, 4.0)
        network.set_link_loss(1, 2, 1.0)
        network.set_link_loss(3, 4, 0.5)
        network.deregister(2)
        assert 2 not in network._degraded
        assert network._link_loss == {(3, 4): 0.5}
        with pytest.raises(ValueError, match="unknown site"):
            network.deregister(2)

    def test_events_are_traced(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().crash(1.0, 1).partition(2.0, [1, 2], [3, 4])
        )
        scheduler.run()
        assert network.tracer.count("crash") == 1
        assert network.tracer.count("partition") == 1
