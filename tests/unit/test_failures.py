"""Unit tests for the failure plan and injector."""

import pytest

from repro.net.network import Network
from repro.net.node import Node
from repro.sim.failures import FailureInjector, FailurePlan, JoinSite
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


def make_net():
    scheduler = Scheduler()
    network = Network(scheduler, Tracer(), RngRegistry(0))
    for i in (1, 2, 3, 4):
        Node(i, network)
    return scheduler, network


class TestPlanBuilding:
    def test_chaining(self):
        plan = FailurePlan().crash(1.0, 2).recover(5.0, 2).heal(9.0)
        assert len(plan) == 3

    def test_describe_sorted_by_time(self):
        plan = FailurePlan().heal(9.0).crash(1.0, 2)
        lines = plan.describe().splitlines()
        assert lines[0].startswith("t=1")

    def test_sever_both_adds_two_actions(self):
        plan = FailurePlan().sever_both(1.0, 2, 3)
        assert len(plan) == 2

    def test_describe_full_format(self):
        # one line per action, t= prefix from the %g-rendered time, the
        # dataclass repr after the colon — the exact log format the
        # experiment harness prints alongside results
        plan = FailurePlan().crash(1.5, 2).heal(10.0)
        lines = plan.describe().splitlines()
        assert lines == [
            "t=1.5: CrashSite(time=1.5, site=2)",
            "t=10: HealNetwork(time=10.0)",
        ]

    def test_describe_empty_plan(self):
        assert FailurePlan().describe() == ""

    def test_describe_stable_under_equal_times(self):
        # sorted() is stable: same-time actions keep insertion order
        plan = FailurePlan().crash(1.0, 3).recover(1.0, 2)
        lines = plan.describe().splitlines()
        assert "CrashSite" in lines[0] and "RecoverSite" in lines[1]

    def test_join_freezes_copies_sorted(self):
        plan = FailurePlan().join(2.0, 9, copies={"y": 2, "x": 1}, near=3)
        action = plan.actions[0]
        assert isinstance(action, JoinSite)
        # mapping frozen to a sorted tuple: hashable, deterministic
        # regardless of dict insertion order
        assert action.copies == (("x", 1), ("y", 2))
        assert action.near == 3

    def test_join_without_copies_is_pure_coordinator(self):
        plan = FailurePlan().join(2.0, 9)
        assert plan.actions[0].copies == ()
        assert plan.actions[0].near is None


class TestInjection:
    def test_crash_and_recover_applied_at_times(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().crash(2.0, 1).recover(5.0, 1))
        scheduler.run_until(3.0)
        assert not network.node(1).alive
        scheduler.run()
        assert network.node(1).alive
        assert len(injector.applied) == 2

    def test_partition_and_heal(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().partition(1.0, [1, 2], [3, 4]).heal(4.0)
        )
        scheduler.run_until(2.0)
        assert not network.partition.reachable(1, 3)
        scheduler.run()
        assert network.partition.reachable(1, 3)

    def test_sever_applied(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(FailurePlan().sever(1.0, 1, 2))
        scheduler.run()
        # directed loss installed: 1 -> 2 drops, 2 -> 1 passes
        assert network._link_loss == {(1, 2): 1.0}

    def test_link_loss_zero_restores_the_link(self):
        # p=0.0 is "heal this link": the entry is removed outright, not
        # kept as a pointless never-drops record
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().sever(1.0, 1, 2, p=0.7).sever(2.0, 1, 2, p=0.0)
        )
        scheduler.run()
        assert network._link_loss == {}

    def test_link_loss_probability_validated(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().sever(1.0, 1, 2, p=1.5))
        with pytest.raises(ValueError, match="outside"):
            scheduler.run()
        # the invalid action must not be recorded as applied
        assert injector.applied == []

    def test_join_without_membership_handler_raises(self):
        scheduler, network = make_net()
        injector = FailureInjector(scheduler, network)  # no membership=
        injector.arm(FailurePlan().join(1.0, 9))
        with pytest.raises(TypeError, match="membership handler"):
            scheduler.run()
        assert injector.applied == []

    def test_join_delegates_to_membership_handler(self):
        scheduler, network = make_net()
        seen: list[JoinSite] = []
        injector = FailureInjector(scheduler, network, membership=seen.append)
        injector.arm(FailurePlan().join(3.0, 9, copies={"x": 1}, near=2))
        scheduler.run()
        assert [a.site for a in seen] == [9]
        assert seen[0].copies == (("x", 1),)
        # applied only after the handler succeeded
        assert injector.applied == seen

    def test_events_are_traced(self):
        scheduler, network = make_net()
        FailureInjector(scheduler, network).arm(
            FailurePlan().crash(1.0, 1).partition(2.0, [1, 2], [3, 4])
        )
        scheduler.run()
        assert network.tracer.count("crash") == 1
        assert network.tracer.count("partition") == 1
