"""Unit tests for the WAN (grouped) delay model."""

import random

import pytest

from repro.net.delays import GroupedDelay


@pytest.fixture
def model():
    # sites 1,2 in DC 0; sites 3,4 in DC 1
    return GroupedDelay({1: 0, 2: 0, 3: 1, 4: 1}, intra=0.1, inter=1.0)


class TestGroupedDelay:
    def test_intra_group_is_fast(self, model):
        assert model.sample(random.Random(0), 1, 2) == 0.1

    def test_inter_group_is_slow(self, model):
        assert model.sample(random.Random(0), 1, 3) == 1.0

    def test_unassigned_site_counts_as_remote(self, model):
        assert model.sample(random.Random(0), 1, 99) == 1.0

    def test_max_delay_is_worst_case(self, model):
        assert model.max_delay == 1.0

    def test_jitter_bounds(self):
        model = GroupedDelay({1: 0, 2: 1}, intra=0.1, inter=1.0, jitter=0.5)
        rng = random.Random(7)
        for __ in range(100):
            delay = model.sample(rng, 1, 2)
            assert 1.0 <= delay <= 1.5
        assert model.max_delay == 1.5

    def test_group_of(self, model):
        assert model.group_of(1) == 0
        assert model.group_of(99) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GroupedDelay({}, intra=2.0, inter=1.0)
        with pytest.raises(ValueError):
            GroupedDelay({}, intra=0.0, inter=1.0)
        with pytest.raises(ValueError):
            GroupedDelay({}, intra=0.1, inter=1.0, jitter=-0.1)


class TestGroupedDelayInCluster:
    def test_cluster_timeouts_use_worst_case(self):
        from repro import CatalogBuilder, Cluster

        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
        model = GroupedDelay({1: 0, 2: 0, 3: 1, 4: 1}, intra=0.1, inter=2.0)
        cluster = Cluster(catalog, delay_model=model)
        assert cluster.T == 2.0
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        assert cluster.outcome(txn.txn).outcome == "commit"

    def test_local_commit_is_faster_than_remote(self):
        """With all copies in one DC, the decision lands much earlier
        than with copies spread across DCs (same T bound)."""
        from repro import CatalogBuilder, Cluster

        groups = {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}
        local = CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()
        spread = CatalogBuilder().replicated_item("x", sites=[1, 4, 5], r=2, w=2).build()

        def decision_time(catalog):
            cluster = Cluster(catalog, delay_model=GroupedDelay(groups, 0.1, 1.0))
            txn = cluster.update(origin=1, writes={"x": 1})
            cluster.run()
            rec = cluster.tracer.where(category="coord-decision", txn=txn.txn)
            return rec[0].time

        assert decision_time(local) < decision_time(spread)