"""Unit tests for the lock manager and deadlock detection."""

import random

from hypothesis import given, settings, strategies as st

from repro.concurrency.deadlock import build_waits_for, choose_victim, find_deadlock
from repro.concurrency.locks import LockManager, LockMode


class TestBasicLocking:
    def test_exclusive_excludes(self):
        lm = LockManager(1)
        assert lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert not lm.acquire("T2", "x", LockMode.EXCLUSIVE)

    def test_shared_locks_coexist(self):
        lm = LockManager(1)
        assert lm.acquire("T1", "x", LockMode.SHARED)
        assert lm.acquire("T2", "x", LockMode.SHARED)

    def test_shared_blocks_exclusive(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        assert not lm.acquire("T2", "x", LockMode.EXCLUSIVE)

    def test_reacquire_is_granted(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.acquire("T1", "x", LockMode.SHARED)  # X covers S

    def test_sole_holder_upgrade(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        assert lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.holder_modes("x")["T1"] is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_sharer(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        lm.acquire("T2", "x", LockMode.SHARED)
        assert not lm.acquire("T1", "x", LockMode.EXCLUSIVE)


class TestTryAcquire:
    def test_try_acquire_never_queues(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert not lm.try_acquire("T2", "x", LockMode.EXCLUSIVE)
        assert lm.waiting("x") == []

    def test_try_acquire_grants_when_free(self):
        lm = LockManager(1)
        assert lm.try_acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.held_by("T1") == ["x"]

    def test_try_acquire_upgrade(self):
        lm = LockManager(1)
        lm.try_acquire("T1", "x", LockMode.SHARED)
        assert lm.try_acquire("T1", "x", LockMode.EXCLUSIVE)


class TestReleaseAndWake:
    def test_release_wakes_fifo(self):
        lm = LockManager(1)
        granted = []
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE, on_grant=lambda: granted.append("T2"))
        lm.acquire("T3", "x", LockMode.EXCLUSIVE, on_grant=lambda: granted.append("T3"))
        lm.release_all("T1")
        assert granted == ["T2"]
        lm.release_all("T2")
        assert granted == ["T2", "T3"]

    def test_release_wakes_compatible_prefix(self):
        lm = LockManager(1)
        granted = []
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.SHARED, on_grant=lambda: granted.append("T2"))
        lm.acquire("T3", "x", LockMode.SHARED, on_grant=lambda: granted.append("T3"))
        lm.release_all("T1")
        assert granted == ["T2", "T3"]

    def test_release_returns_items(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T1", "y", LockMode.SHARED)
        assert sorted(lm.release_all("T1")) == ["x", "y"]

    def test_release_drops_queued_requests(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)
        lm.release_all("T2")  # T2 gives up while queued
        assert lm.waiting("x") == []

    def test_fifo_prevents_queue_jumping(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)  # queued
        # T3's shared request is compatible with T1 but must not jump T2
        assert not lm.acquire("T3", "x", LockMode.SHARED)

    def test_queued_abort_wakes_followers(self):
        """Lost-wakeup regression: a txn aborting while its ungranted
        request heads another item's queue must wake the waiters behind
        it — they were only blocked by FIFO fairness."""
        lm = LockManager(1)
        granted = []
        lm.acquire("T1", "x", LockMode.SHARED)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)  # queued at the head
        lm.acquire("T3", "x", LockMode.SHARED, on_grant=lambda: granted.append("T3"))
        lm.release_all("T2")  # T2 aborts while queued, holding nothing
        assert granted == ["T3"]
        assert lm.holder_modes("x") == {"T1": LockMode.SHARED, "T3": LockMode.SHARED}
        assert lm.waiting("x") == []

    def test_queued_abort_wakes_on_every_item(self):
        """The head request may sit on several items' queues at once."""
        lm = LockManager(1)
        granted = []
        for item in ("x", "y"):
            lm.acquire("H", item, LockMode.SHARED)
            lm.acquire("T2", item, LockMode.EXCLUSIVE)
            lm.acquire(
                "T3", item, LockMode.SHARED, on_grant=lambda item=item: granted.append(item)
            )
        lm.release_all("T2")
        assert granted == ["x", "y"]


class TestTableFootprint:
    """The vote hot path and the introspection reads must not grow the
    lock table: long sweeps probe thousands of distinct items."""

    def test_refused_try_acquire_allocates_no_entry(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        base = len(lm._items)
        for __ in range(50):
            assert not lm.try_acquire("T2", "x", LockMode.EXCLUSIVE)
        assert len(lm._items) == base

    def test_introspection_allocates_no_entry(self):
        lm = LockManager(1)
        for i in range(50):
            item = f"ghost{i}"
            assert not lm.is_locked(item)
            assert lm.holder_modes(item) == {}
            assert lm.waiting(item) == []
        assert len(lm._items) == 0

    def test_release_prunes_empty_entries(self):
        lm = LockManager(1)
        for i in range(20):
            assert lm.try_acquire("T1", f"i{i}", LockMode.EXCLUSIVE)
        assert len(lm._items) == 20
        lm.release_all("T1")
        assert len(lm._items) == 0

    def test_release_keeps_entries_with_waiters(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)  # queued
        lm.acquire("T3", "x", LockMode.EXCLUSIVE)  # queued behind T2
        lm.release_all("T1")  # wakes T2; T3 still waits — entry must stay
        assert lm.holder_modes("x") == {"T2": LockMode.EXCLUSIVE}
        assert [r.txn for r in lm.waiting("x")] == ["T3"]


class TestIntrospection:
    def test_is_locked_unrestricted(self):
        lm = LockManager(1)
        assert not lm.is_locked("x")
        lm.acquire("T1", "x", LockMode.SHARED)
        assert lm.is_locked("x")

    def test_is_locked_filtered_by_txn_set(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.is_locked("x", {"T1"})
        assert not lm.is_locked("x", {"T9"})

    def test_waits_edges(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert lm.waits_edges() == [("T2", "T1")]


class TestDeadlock:
    def _cycle(self):
        lm1, lm2 = LockManager(1), LockManager(2)
        lm1.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm2.acquire("T2", "y", LockMode.EXCLUSIVE)
        lm1.acquire("T2", "x", LockMode.EXCLUSIVE)  # T2 waits on T1
        lm2.acquire("T1", "y", LockMode.EXCLUSIVE)  # T1 waits on T2
        return [lm1, lm2]

    def test_detects_cross_site_cycle(self):
        cycle = find_deadlock(self._cycle())
        assert cycle is not None
        assert set(cycle) == {"T1", "T2"}

    def test_no_cycle_returns_none(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert find_deadlock([lm]) is None

    def test_victim_is_greatest(self):
        assert choose_victim(["T1", "T3", "T2"]) == "T3"

    def test_waits_for_graph_nodes(self):
        graph = build_waits_for(self._cycle())
        assert set(graph.nodes) == {"T1", "T2"}


class TestProbeParity:
    """The exclusive-holder counter vs the legacy compatibility scan.

    ``legacy_probe=True`` restores the historical allocating
    ``all(compatible_with...)`` probe; random op interleavings applied
    to both managers must produce identical grant decisions and
    identical lock-table state at every step.
    """

    @given(st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_grant_decisions_identical(self, seed):
        rng = random.Random(seed)
        tracked = LockManager(1)
        legacy = LockManager(1, legacy_probe=True)
        txns = [f"T{i}" for i in range(5)]
        items = ["x", "y", "z"]
        for _ in range(60):
            action = rng.randrange(3)
            txn = rng.choice(txns)
            item = rng.choice(items)
            mode = LockMode.EXCLUSIVE if rng.random() < 0.5 else LockMode.SHARED
            if action == 0:
                assert tracked.acquire(txn, item, mode) == legacy.acquire(
                    txn, item, mode
                )
            elif action == 1:
                assert tracked.try_acquire(txn, item, mode) == legacy.try_acquire(
                    txn, item, mode
                )
            else:
                assert tracked.release_all(txn) == legacy.release_all(txn)
            for probe_item in items:
                assert tracked.holder_modes(probe_item) == legacy.holder_modes(
                    probe_item
                )
                assert [r.txn for r in tracked.waiting(probe_item)] == [
                    r.txn for r in legacy.waiting(probe_item)
                ]

    @given(st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_exclusive_counter_matches_holder_scan(self, seed):
        rng = random.Random(seed)
        lm = LockManager(1)
        txns = [f"T{i}" for i in range(4)]
        for _ in range(50):
            txn = rng.choice(txns)
            mode = LockMode.EXCLUSIVE if rng.random() < 0.5 else LockMode.SHARED
            if rng.random() < 0.3:
                lm.release_all(txn)
            elif rng.random() < 0.5:
                lm.acquire(txn, "hot", mode)
            else:
                lm.try_acquire(txn, "hot", mode)
            entry = lm._items.get("hot")
            if entry is not None:
                scanned = sum(
                    held is LockMode.EXCLUSIVE for held in entry.holders.values()
                )
                assert entry.exclusive == scanned
