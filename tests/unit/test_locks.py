"""Unit tests for the lock manager and deadlock detection."""

from repro.concurrency.deadlock import build_waits_for, choose_victim, find_deadlock
from repro.concurrency.locks import LockManager, LockMode


class TestBasicLocking:
    def test_exclusive_excludes(self):
        lm = LockManager(1)
        assert lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert not lm.acquire("T2", "x", LockMode.EXCLUSIVE)

    def test_shared_locks_coexist(self):
        lm = LockManager(1)
        assert lm.acquire("T1", "x", LockMode.SHARED)
        assert lm.acquire("T2", "x", LockMode.SHARED)

    def test_shared_blocks_exclusive(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        assert not lm.acquire("T2", "x", LockMode.EXCLUSIVE)

    def test_reacquire_is_granted(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.acquire("T1", "x", LockMode.SHARED)  # X covers S

    def test_sole_holder_upgrade(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        assert lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.holder_modes("x")["T1"] is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_sharer(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        lm.acquire("T2", "x", LockMode.SHARED)
        assert not lm.acquire("T1", "x", LockMode.EXCLUSIVE)


class TestTryAcquire:
    def test_try_acquire_never_queues(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert not lm.try_acquire("T2", "x", LockMode.EXCLUSIVE)
        assert lm.waiting("x") == []

    def test_try_acquire_grants_when_free(self):
        lm = LockManager(1)
        assert lm.try_acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.held_by("T1") == ["x"]

    def test_try_acquire_upgrade(self):
        lm = LockManager(1)
        lm.try_acquire("T1", "x", LockMode.SHARED)
        assert lm.try_acquire("T1", "x", LockMode.EXCLUSIVE)


class TestReleaseAndWake:
    def test_release_wakes_fifo(self):
        lm = LockManager(1)
        granted = []
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE, on_grant=lambda: granted.append("T2"))
        lm.acquire("T3", "x", LockMode.EXCLUSIVE, on_grant=lambda: granted.append("T3"))
        lm.release_all("T1")
        assert granted == ["T2"]
        lm.release_all("T2")
        assert granted == ["T2", "T3"]

    def test_release_wakes_compatible_prefix(self):
        lm = LockManager(1)
        granted = []
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.SHARED, on_grant=lambda: granted.append("T2"))
        lm.acquire("T3", "x", LockMode.SHARED, on_grant=lambda: granted.append("T3"))
        lm.release_all("T1")
        assert granted == ["T2", "T3"]

    def test_release_returns_items(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T1", "y", LockMode.SHARED)
        assert sorted(lm.release_all("T1")) == ["x", "y"]

    def test_release_drops_queued_requests(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)
        lm.release_all("T2")  # T2 gives up while queued
        assert lm.waiting("x") == []

    def test_fifo_prevents_queue_jumping(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.SHARED)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)  # queued
        # T3's shared request is compatible with T1 but must not jump T2
        assert not lm.acquire("T3", "x", LockMode.SHARED)


class TestIntrospection:
    def test_is_locked_unrestricted(self):
        lm = LockManager(1)
        assert not lm.is_locked("x")
        lm.acquire("T1", "x", LockMode.SHARED)
        assert lm.is_locked("x")

    def test_is_locked_filtered_by_txn_set(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        assert lm.is_locked("x", {"T1"})
        assert not lm.is_locked("x", {"T9"})

    def test_waits_edges(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert lm.waits_edges() == [("T2", "T1")]


class TestDeadlock:
    def _cycle(self):
        lm1, lm2 = LockManager(1), LockManager(2)
        lm1.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm2.acquire("T2", "y", LockMode.EXCLUSIVE)
        lm1.acquire("T2", "x", LockMode.EXCLUSIVE)  # T2 waits on T1
        lm2.acquire("T1", "y", LockMode.EXCLUSIVE)  # T1 waits on T2
        return [lm1, lm2]

    def test_detects_cross_site_cycle(self):
        cycle = find_deadlock(self._cycle())
        assert cycle is not None
        assert set(cycle) == {"T1", "T2"}

    def test_no_cycle_returns_none(self):
        lm = LockManager(1)
        lm.acquire("T1", "x", LockMode.EXCLUSIVE)
        lm.acquire("T2", "x", LockMode.EXCLUSIVE)
        assert find_deadlock([lm]) is None

    def test_victim_is_greatest(self):
        assert choose_victim(["T1", "T3", "T2"]) == "T3"

    def test_waits_for_graph_nodes(self):
        graph = build_waits_for(self._cycle())
        assert set(graph.nodes) == {"T1", "T2"}
