"""Unit tests for the statistics helpers."""

import pytest

from repro.experiments.stats import MeanCI, mean_ci, paired_comparison


class TestMeanCI:
    def test_interval_contains_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.low <= ci.mean <= ci.high
        assert ci.n == 4

    def test_single_sample_degenerate(self):
        ci = mean_ci([5.0])
        assert ci == MeanCI(5.0, 5.0, 5.0, 1, 0.95)

    def test_constant_sample_degenerate(self):
        ci = mean_ci([2.0, 2.0, 2.0])
        assert ci.low == ci.high == 2.0

    def test_wider_confidence_wider_interval(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = mean_ci(data, confidence=0.80)
        wide = mean_ci(data, confidence=0.99)
        assert wide.high - wide.low > narrow.high - narrow.low

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])


class TestPairedComparison:
    def test_detects_consistent_difference(self):
        a = [1.0, 2.0, 3.0, 4.0, 5.0]
        b = [x + 0.5 for x in a]
        cmp = paired_comparison(a, b)
        assert cmp.mean_difference == pytest.approx(-0.5)
        assert cmp.significant

    def test_identical_samples_not_significant(self):
        cmp = paired_comparison([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert cmp.p_value == 1.0
        assert not cmp.significant

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([1.0], [1.0, 2.0])

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([1.0], [2.0])

    def test_constant_difference_counts_as_significant(self):
        cmp = paired_comparison([1.0, 2.0, 3.0], [2.0, 3.0, 4.0])
        assert cmp.significant
