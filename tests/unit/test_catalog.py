"""Unit tests for the replica catalog and quorum planner."""

import pytest

from repro.common.errors import ConfigurationError, QuorumUnreachableError
from repro.replication.accessor import QuorumPlanner
from repro.replication.catalog import CatalogBuilder, ItemConfig
from repro.storage.store import VersionedValue


class TestConstraints:
    def test_valid_assignment_accepted(self):
        config = ItemConfig("x", {1: 1, 2: 1, 3: 1}, read_quorum=2, write_quorum=2)
        config.validate()  # must not raise

    def test_r_plus_w_must_exceed_v(self):
        with pytest.raises(ConfigurationError, match="r \\+ w"):
            CatalogBuilder().item("x", {1: 1, 2: 1, 3: 1, 4: 1}, r=2, w=2).build()

    def test_two_w_must_exceed_v(self):
        with pytest.raises(ConfigurationError, match="2w"):
            CatalogBuilder().item("x", {1: 1, 2: 1, 3: 1, 4: 1}, r=3, w=2).build()

    def test_no_copies_rejected(self):
        with pytest.raises(ConfigurationError, match="no copies"):
            CatalogBuilder().item("x", {}, r=1, w=1).build()

    def test_nonpositive_vote_rejected(self):
        with pytest.raises(ConfigurationError, match="non-positive vote"):
            CatalogBuilder().item("x", {1: 0, 2: 2}, r=1, w=2).build()

    def test_quorum_exceeding_total_rejected(self):
        with pytest.raises(ConfigurationError):
            CatalogBuilder().item("x", {1: 1, 2: 1}, r=1, w=3).build()

    def test_duplicate_item_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate item"):
            (
                CatalogBuilder()
                .replicated_item("x", [1, 2, 3])
                .replicated_item("x", [1, 2, 3])
                .build()
            )

    def test_weighted_votes(self):
        catalog = CatalogBuilder().item("x", {1: 3, 2: 1, 3: 1}, r=2, w=4).build()
        assert catalog.v("x") == 5
        assert catalog.votes("x", [1]) == 3


class TestDefaults:
    def test_replicated_item_majority_default(self):
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4, 5]).build()
        assert catalog.w("x") == 3
        assert catalog.r("x") == 3
        assert catalog.v("x") == 5

    def test_replicated_item_explicit_quorums(self):
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
        assert (catalog.r("x"), catalog.w("x")) == (2, 3)


class TestLookups:
    @pytest.fixture
    def catalog(self):
        return (
            CatalogBuilder()
            .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
            .replicated_item("y", sites=[3, 4, 5], r=2, w=2)
            .build()
        )

    def test_unknown_item_rejected(self, catalog):
        with pytest.raises(ConfigurationError, match="unknown item"):
            catalog.r("ghost")

    def test_sites_of(self, catalog):
        assert catalog.sites_of("y") == [3, 4, 5]

    def test_sites_of_any_unions(self, catalog):
        assert catalog.sites_of_any(["x", "y"]) == [1, 2, 3, 4, 5]

    def test_all_sites(self, catalog):
        assert catalog.all_sites() == [1, 2, 3, 4, 5]

    def test_votes_ignore_nonhosting_sites(self, catalog):
        assert catalog.votes("x", [1, 2, 99]) == 2

    def test_votes_deduplicate(self, catalog):
        assert catalog.votes("x", [1, 1, 1]) == 1

    def test_quorum_predicates(self, catalog):
        assert catalog.has_read_quorum("x", [1, 2])
        assert not catalog.has_read_quorum("x", [1])
        assert catalog.has_write_quorum("x", [1, 2, 3])
        assert not catalog.has_write_quorum("x", [1, 2])

    def test_contains(self, catalog):
        assert "x" in catalog and "ghost" not in catalog


class TestPlanner:
    @pytest.fixture
    def planner(self):
        catalog = CatalogBuilder().item("x", {1: 2, 2: 1, 3: 1, 4: 1}, r=2, w=4).build()
        return QuorumPlanner(catalog)

    def test_plan_read_prefers_high_vote_sites(self, planner):
        assert planner.plan_read("x", [1, 2, 3, 4]) == (1,)

    def test_plan_read_accumulates(self, planner):
        assert planner.plan_read("x", [2, 3, 4]) == (2, 3)

    def test_plan_read_unreachable_raises(self, planner):
        with pytest.raises(QuorumUnreachableError) as exc:
            planner.plan_read("x", [4])
        assert exc.value.gathered == 1
        assert exc.value.needed == 2

    def test_plan_write_needs_w_votes(self, planner):
        assert planner.plan_write("x", [1, 2, 3, 4]) == (1, 2, 3)

    def test_plan_write_unreachable(self, planner):
        with pytest.raises(QuorumUnreachableError):
            planner.plan_write("x", [2, 3, 4])

    def test_resolve_read_takes_max_version(self, planner):
        replies = {
            1: VersionedValue("old", 3),
            2: VersionedValue("new", 5),
            3: VersionedValue("old", 3),
        }
        result = QuorumPlanner.resolve_read("x", replies)
        assert result.value == "new"
        assert result.version == 5
        assert result.stale_sites == (1, 3)

    def test_resolve_read_empty_raises(self):
        with pytest.raises(QuorumUnreachableError):
            QuorumPlanner.resolve_read("x", {})

    def test_next_version(self):
        assert QuorumPlanner.next_version([3, 5, 4]) == 6
        assert QuorumPlanner.next_version([]) == 1
