"""Unit tests for delay models."""

import random

import pytest

from repro.net.delays import FixedDelay, UniformDelay


class TestFixedDelay:
    def test_constant(self):
        model = FixedDelay(2.5)
        rng = random.Random(0)
        assert model.sample(rng, 1, 2) == 2.5
        assert model.max_delay == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedDelay(0)
        with pytest.raises(ValueError):
            FixedDelay(-1)


class TestUniformDelay:
    def test_samples_within_bounds(self):
        model = UniformDelay(0.5, 2.0)
        rng = random.Random(1)
        for __ in range(200):
            delay = model.sample(rng, 1, 2)
            assert 0.5 <= delay <= 2.0

    def test_max_delay_is_upper_bound(self):
        assert UniformDelay(0.1, 3.0).max_delay == 3.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformDelay(0.0, 1.0)

    def test_deterministic_under_seed(self):
        model = UniformDelay(0.1, 1.0)
        a = [model.sample(random.Random(5), 1, 2) for __ in range(3)]
        b = [model.sample(random.Random(5), 1, 2) for __ in range(3)]
        assert a == b
