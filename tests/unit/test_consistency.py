"""Unit tests for the atomicity checker."""

from repro.analysis.consistency import check_atomicity, first_decision_consistency
from repro.sim.trace import Tracer


def trace_with(decisions, conflicts=0, illegal=0, blocked=()):
    tracer = Tracer()
    for site, outcome in decisions:
        tracer.record(1.0, site, "decision", "T1", outcome=outcome, via="test")
    for __ in range(conflicts):
        tracer.record(2.0, 0, "decision-conflict", "T1", have="C", wanted="A")
    for __ in range(illegal):
        tracer.record(2.0, 0, "illegal-transition", "T1", src="PC", dst="PA")
    for site in blocked:
        tracer.record(2.0, site, "blocked", "T1", reason="no-quorum")
    return tracer


class TestAtomicity:
    def test_all_commit_is_atomic(self):
        report = check_atomicity(trace_with([(1, "commit"), (2, "commit")]), "T1", [1, 2])
        assert report.atomic
        assert report.outcome == "commit"
        assert report.fully_terminated

    def test_all_abort_is_atomic(self):
        report = check_atomicity(trace_with([(1, "abort")]), "T1", [1])
        assert report.atomic and report.outcome == "abort"

    def test_mixed_outcome_violates(self):
        report = check_atomicity(
            trace_with([(1, "commit"), (2, "abort")]), "T1", [1, 2]
        )
        assert not report.atomic
        assert report.outcome == "mixed"

    def test_per_site_conflict_counts(self):
        report = check_atomicity(trace_with([(1, "commit")], conflicts=2), "T1", [1])
        assert report.conflicts == 2
        assert not report.atomic

    def test_conflicting_decision_records_same_site(self):
        tracer = trace_with([(1, "commit")])
        tracer.record(3.0, 1, "decision", "T1", outcome="abort", via="late")
        report = check_atomicity(tracer, "T1", [1])
        assert report.conflicts >= 1

    def test_undecided_and_blocked(self):
        report = check_atomicity(
            trace_with([(1, "commit")], blocked=(2,)), "T1", [1, 2]
        )
        assert report.undecided_sites == [2]
        assert report.blocked_sites == [2]
        assert not report.fully_terminated

    def test_blocked_outcome(self):
        report = check_atomicity(trace_with([], blocked=(1, 2)), "T1", [1, 2])
        assert report.outcome == "blocked"
        assert report.atomic  # blocked is safe, just unavailable

    def test_decisions_outside_participants_ignored(self):
        report = check_atomicity(trace_with([(9, "commit")]), "T1", [1])
        assert report.committed_sites == []

    def test_illegal_transitions_counted(self):
        report = check_atomicity(trace_with([(1, "commit")], illegal=1), "T1", [1])
        assert report.illegal_transitions == 1

    def test_describe_renders(self):
        report = check_atomicity(trace_with([(1, "commit")]), "T1", [1])
        assert "T1" in report.describe()


class TestFirstDecision:
    def test_consistent_history(self):
        assert first_decision_consistency(
            trace_with([(1, "commit"), (2, "commit")]), "T1"
        )

    def test_inconsistent_history(self):
        assert not first_decision_consistency(
            trace_with([(1, "abort"), (2, "commit")]), "T1"
        )

    def test_empty_history_consistent(self):
        assert first_decision_consistency(Tracer(), "T1")
