"""Unit-level tests of the election mixin, driven directly."""

import pytest

from repro import CatalogBuilder, Cluster
from repro.election.bully import MAX_ELECTION_ROUNDS
from repro.net.message import Message


@pytest.fixture
def cluster():
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3).build()
    return Cluster(catalog, protocol="qtp1")


def with_records(cluster):
    """Give every site a W-state record without running a protocol."""
    txn = cluster.update(origin=1, writes={"x": 1})
    cluster.run_until(1.5)  # votes cast; records exist, state W
    return txn


class TestStartElection:
    def test_no_record_is_noop(self, cluster):
        engine = cluster.sites[2].engine
        engine.start_election("ghost")  # must not raise
        assert not cluster.tracer.where(category="election", txn="ghost")

    def test_decided_record_is_noop(self, cluster):
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        engine = cluster.sites[2].engine
        engine.start_election(txn.txn)
        assert not cluster.tracer.where(category="election", txn=txn.txn)

    def test_blocked_record_is_noop(self, cluster):
        txn = with_records(cluster)
        record = cluster.sites[2].engine.record(txn.txn)
        record.blocked = True
        cluster.sites[2].engine.start_election(txn.txn)
        assert record.election_rounds == 0

    def test_round_counter_increments(self, cluster):
        txn = with_records(cluster)
        engine = cluster.sites[2].engine
        engine.start_election(txn.txn)
        assert engine.record(txn.txn).election_rounds == 1

    def test_round_budget_enforced(self, cluster):
        txn = with_records(cluster)
        engine = cluster.sites[2].engine
        record = engine.record(txn.txn)
        record.election_rounds = MAX_ELECTION_ROUNDS
        engine.start_election(txn.txn)
        assert record.blocked
        gave_up = cluster.tracer.where(
            category="blocked",
            txn=txn.txn,
            pred=lambda r: r.detail.get("reason") == "election-rounds-exhausted",
        )
        assert gave_up

    def test_highest_site_self_elects_immediately(self, cluster):
        txn = with_records(cluster)
        engine = cluster.sites[4].engine  # no higher participant
        engine.start_election(txn.txn)
        cluster.run_until(cluster.scheduler.now + 0.01)
        assert cluster.tracer.where(category="coordinator", txn=txn.txn, site=4)


class TestInquiryResponses:
    def test_alive_reply_to_inquiry(self, cluster):
        txn = with_records(cluster)
        engine = cluster.sites[3].engine
        engine._on_elect_inquiry(Message(2, 3, "elect.inquiry", txn.txn))
        cluster.run()
        alive = [
            r
            for r in cluster.tracer.where(category="send", txn=txn.txn)
            if r.detail.get("mtype") == "elect.alive" and r.site == 3
        ]
        assert alive

    def test_decided_site_sends_outcome(self, cluster):
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        sends_before = cluster.tracer.count("send")
        engine = cluster.sites[3].engine
        engine._on_elect_inquiry(Message(2, 3, "elect.inquiry", txn.txn))
        new_sends = cluster.tracer.where(category="send")[sends_before:]
        mtypes = {r.detail["mtype"] for r in new_sends}
        assert "qtp1.commit" in mtypes

    def test_nonparticipant_stays_silent(self, cluster):
        engine = cluster.sites[3].engine
        sends_before = cluster.tracer.count("send")
        engine._on_elect_inquiry(Message(2, 3, "elect.inquiry", "ghost"))
        assert cluster.tracer.count("send") == sends_before

    def test_alive_marks_heard_higher(self, cluster):
        txn = with_records(cluster)
        engine = cluster.sites[2].engine
        record = engine.record(txn.txn)
        record.electing = True
        engine._on_elect_alive(Message(3, 2, "elect.alive", txn.txn))
        assert record.heard_higher
