"""Unit tests for the partition view."""

import pytest

from repro.net.partitions import PartitionView


class TestConstruction:
    def test_default_is_fully_connected(self):
        view = PartitionView([1, 2, 3])
        assert not view.is_partitioned
        assert view.reachable(1, 3)

    def test_explicit_groups(self):
        view = PartitionView([1, 2, 3, 4], [[1, 2], [3, 4]])
        assert view.is_partitioned
        assert view.reachable(1, 2)
        assert not view.reachable(2, 3)

    def test_unlisted_sites_become_singletons(self):
        view = PartitionView([1, 2, 3], [[1, 2]])
        assert view.component_of(3) == frozenset([3])
        assert not view.reachable(1, 3)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="multiple groups"):
            PartitionView([1, 2, 3], [[1, 2], [2, 3]])

    def test_unknown_sites_rejected(self):
        with pytest.raises(ValueError, match="unknown sites"):
            PartitionView([1, 2], [[1, 2, 9]])

    def test_empty_groups_ignored(self):
        view = PartitionView([1, 2], [[], [1, 2]])
        assert len(view.components) == 1


class TestQueries:
    def test_component_of_unknown_site_raises(self):
        view = PartitionView([1, 2])
        with pytest.raises(ValueError, match="unknown site"):
            view.component_of(99)

    def test_self_reachability(self):
        view = PartitionView([1, 2], [[1], [2]])
        assert view.reachable(1, 1)

    def test_healed_restores_connectivity(self):
        view = PartitionView([1, 2, 3], [[1], [2, 3]])
        healed = view.healed()
        assert not healed.is_partitioned
        assert healed.reachable(1, 2)

    def test_components_cover_universe(self):
        view = PartitionView([1, 2, 3, 4, 5], [[1, 3], [2]])
        covered = set()
        for comp in view.components:
            covered |= comp
        assert covered == {1, 2, 3, 4, 5}

    def test_equality_ignores_group_order(self):
        a = PartitionView([1, 2, 3], [[1], [2, 3]])
        b = PartitionView([1, 2, 3], [[2, 3], [1]])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = PartitionView([1, 2, 3], [[1], [2, 3]])
        b = PartitionView([1, 2, 3], [[1, 2], [3]])
        assert a != b

    def test_eq_against_other_types(self):
        assert PartitionView([1, 2]) != "not-a-view"

    def test_sorted_components_memoized_and_ordered(self):
        view = PartitionView([1, 2, 3, 4, 5], [[3, 1], [5, 4]])
        rendered = view.sorted_components()
        assert rendered == [[1, 3], [4, 5], [2]]
        assert view.sorted_components() is rendered  # memoized

    def test_hash_is_stable_and_usable_as_key(self):
        a = PartitionView([1, 2, 3], [[1], [2, 3]])
        b = PartitionView([1, 2, 3], [[2, 3], [1]])
        views = {a: "first"}
        assert views[b] == "first"
