"""Elastic membership: sites joining mid-run through Network/Cluster."""

import pytest

from repro.common.errors import ConfigurationError
from repro.db.cluster import Cluster
from repro.net.network import Network
from repro.net.node import Node
from repro.replication.catalog import CatalogBuilder
from repro.sim.failures import FailureInjector, FailurePlan, JoinSite
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


def small_catalog():
    return (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3], r=2, w=2)
        .replicated_item("y", sites=[2, 3, 4], r=2, w=2)
        .build()
    )


class TestNetworkRegistration:
    def _net(self, n=4):
        scheduler = Scheduler()
        network = Network(scheduler, Tracer(), RngRegistry(0))
        for i in range(1, n + 1):
            Node(i, network)
        return network

    def test_register_preserves_active_partition(self):
        network = self._net()
        network.set_partition([[1, 2], [3, 4]])
        Node(9, network)
        assert not network.partition.reachable(1, 3)  # old split intact
        assert network.partition.component_of(9) == frozenset([9])

    def test_register_on_healed_network_joins_everyone(self):
        network = self._net()
        Node(9, network)
        assert network.partition.reachable(9, 1)

    def test_place_with_moves_into_component(self):
        network = self._net()
        network.set_partition([[1, 2], [3, 4]])
        Node(9, network)
        network.place_with(9, 3)
        assert network.partition.component_of(9) == frozenset([3, 4, 9])
        assert not network.partition.reachable(9, 1)

    def test_place_with_is_noop_when_already_together(self):
        network = self._net()
        Node(9, network)
        epoch = network.epoch
        network.place_with(9, 1)  # healed: already one component
        assert network.epoch == epoch

    def test_place_with_unknown_sites_rejected(self):
        network = self._net()
        with pytest.raises(ValueError):
            network.place_with(99, 1)
        with pytest.raises(ValueError):
            network.place_with(1, 99)


class TestClusterJoin:
    def test_join_builds_full_site_stack(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        site = cluster.join_site(7, {"x": 1})
        assert cluster.sites[7] is site
        assert site.engine is not None
        assert site.store.hosts("x") and not site.store.hosts("y")
        assert 7 in cluster.catalog.sites_of("x")

    def test_join_rebalances_quorums(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        cluster.join_site(7, {"x": 1})
        assert cluster.catalog.v("x") == 4
        assert cluster.catalog.w("x") == 3  # majority of the new total
        assert cluster.catalog.r("x") == 2
        assert cluster.catalog.v("y") == 3  # untouched item unchanged

    def test_join_under_partition_lands_in_named_component(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        cluster.network.set_partition([[1, 2], [3, 4]])
        cluster.join_site(7, {"x": 1}, near=3)
        view = cluster.network.partition
        assert view.component_of(7) == frozenset([3, 4, 7])
        assert not view.reachable(7, 1)

    def test_join_without_near_is_singleton_under_partition(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        cluster.network.set_partition([[1, 2], [3, 4]])
        cluster.join_site(7)
        assert cluster.network.partition.component_of(7) == frozenset([7])

    def test_joined_copy_receives_component_state_transfer(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 42})
        cluster.run()
        assert cluster.outcome(txn.txn).outcome == "commit"
        site = cluster.join_site(7, {"x": 1}, near=1)
        record = site.store.read("x")
        assert (record.value, record.version) == (42, 1)

    def test_state_transfer_sees_only_own_component(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 42})
        cluster.run()
        assert cluster.outcome(txn.txn).outcome == "commit"
        cluster.network.set_partition([[1], [2, 3, 4]])
        # site 1's component holds a current copy of x; join far from it
        site = cluster.join_site(7, {"x": 1}, near=1)
        assert site.store.read("x").version == 1
        # a second joiner isolated from every copy starts cold
        lonely = cluster.join_site(8, {"y": 1})
        assert lonely.store.read("y").version == 0

    def test_joined_site_becomes_participant_of_later_txns(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        cluster.join_site(7, {"x": 1})
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        assert 7 in txn.participants
        assert cluster.outcome(txn.txn).outcome == "commit"
        assert cluster.sites[7].store.read("x").version == 1

    def test_duplicate_join_rejected(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        with pytest.raises(ConfigurationError):
            cluster.join_site(2)

    def test_rejected_join_leaves_cluster_unchanged(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        with pytest.raises(ConfigurationError):
            cluster.join_site(7, {"nope": 1})
        assert 7 not in cluster.sites
        assert 7 not in cluster.network.sites
        assert cluster.catalog.item_names == ["x", "y"]

    def test_join_near_unknown_site_rejected_before_any_mutation(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        with pytest.raises(ConfigurationError):
            cluster.join_site(7, {"x": 1}, near=99)
        assert 7 not in cluster.sites
        assert 7 not in cluster.network.sites
        assert cluster.catalog.v("x") == 3  # copies not admitted

    def test_skq_pinned_quorums_reject_joins(self):
        cluster = Cluster(
            small_catalog(), protocol="skq", commit_quorum=3, abort_quorum=2
        )
        with pytest.raises(ConfigurationError):
            cluster.join_site(7, {"x": 1})
        assert 7 not in cluster.sites

    def test_skq_adaptive_quorums_accept_joins(self):
        cluster = Cluster(small_catalog(), protocol="skq")
        cluster.join_site(7, {"x": 1})
        txn = cluster.update(origin=1, writes={"x": 5})
        cluster.run()
        assert cluster.outcome(txn.txn).outcome == "commit"


class TestPlanJoin:
    def test_plan_join_applies_through_cluster(self):
        cluster = Cluster(small_catalog(), protocol="qtp1")
        plan = (
            FailurePlan()
            .partition(1.0, [1, 2], [3, 4])
            .join(2.0, 7, copies={"x": 1}, near=1)
            .heal(5.0)
        )
        cluster.arm_failures(plan)
        cluster.run()
        assert 7 in cluster.sites
        assert 7 in cluster.catalog.sites_of("x")
        applied = [a for a in cluster.injector.applied if isinstance(a, JoinSite)]
        assert applied == [JoinSite(2.0, 7, (("x", 1),), 1)]
        # joined at t=2 under the active partition, into site 1's side
        joins = cluster.tracer.where(category="join")
        assert joins and joins[0].detail["component"] == [1, 2, 7]

    def test_bare_injector_rejects_join_actions(self):
        scheduler = Scheduler()
        network = Network(scheduler, Tracer(), RngRegistry(0))
        Node(1, network)
        injector = FailureInjector(scheduler, network)
        injector.arm(FailurePlan().join(1.0, 7))
        with pytest.raises(TypeError):
            scheduler.run()
