"""Unit tests for the database-layer protocol hooks and Site recovery."""

import pytest

from repro import CatalogBuilder, Cluster
from repro.concurrency.locks import LockMode
from repro.db.site import SiteHooks


@pytest.fixture
def cluster():
    catalog = (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3], r=2, w=2)
        .replicated_item("y", sites=[1, 2, 3], r=2, w=2)
        .build()
    )
    return Cluster(catalog, protocol="qtp1")


class TestVoteHook:
    def test_yes_takes_exclusive_locks(self, cluster):
        site = cluster.sites[1]
        hooks = SiteHooks(site)
        assert hooks.vote("T1", {"x": (5, 1), "y": (6, 1)})
        assert site.locks.held_by("T1") == ["x", "y"]
        assert site.locks.holder_modes("x")["T1"] is LockMode.EXCLUSIVE

    def test_no_vote_rolls_back_partial_locks(self, cluster):
        site = cluster.sites[1]
        site.locks.acquire("intruder", "y", LockMode.EXCLUSIVE)
        hooks = SiteHooks(site)
        assert not hooks.vote("T1", {"x": (5, 1), "y": (6, 1)})
        assert site.locks.held_by("T1") == []  # x was rolled back

    def test_vote_ignores_unhosted_items(self, cluster):
        site = cluster.sites[1]
        hooks = SiteHooks(site)
        assert hooks.vote("T1", {"ghost": (5, 1)})
        assert site.locks.held_by("T1") == []

    def test_vote_no_traced(self, cluster):
        site = cluster.sites[1]
        site.locks.acquire("intruder", "x", LockMode.EXCLUSIVE)
        SiteHooks(site).vote("T1", {"x": (5, 1)})
        assert cluster.tracer.count("vote-no", txn="T1") == 1


class TestApplyHooks:
    def test_commit_installs_and_unlocks(self, cluster):
        site = cluster.sites[1]
        hooks = SiteHooks(site)
        hooks.vote("T1", {"x": (5, 1)})
        hooks.apply_commit("T1", {"x": (5, 1)})
        assert site.store.read("x").value == 5
        assert site.locks.held_by("T1") == []
        applies = [r for r in site.wal if r.kind == "apply"]
        assert len(applies) == 1

    def test_commit_skips_stale_version(self, cluster):
        site = cluster.sites[1]
        site.store.write("x", 99, 7)
        SiteHooks(site).apply_commit("T1", {"x": (5, 1)})
        assert site.store.read("x").value == 99  # newer version kept

    def test_commit_skips_unhosted(self, cluster):
        site = cluster.sites[1]
        SiteHooks(site).apply_commit("T1", {"ghost": (5, 1)})
        assert not site.store.hosts("ghost")

    def test_abort_only_unlocks(self, cluster):
        site = cluster.sites[1]
        hooks = SiteHooks(site)
        hooks.vote("T1", {"x": (5, 1)})
        hooks.apply_abort("T1")
        assert site.store.read("x").value == 0
        assert site.locks.held_by("T1") == []


class TestSiteRecovery:
    def test_double_engine_rejected(self, cluster):
        with pytest.raises(ValueError, match="already has an engine"):
            cluster.sites[1].attach_engine(cluster.sites[1].engine)

    def test_crash_clears_lock_table(self, cluster):
        site = cluster.sites[1]
        site.locks.acquire("T1", "x", LockMode.EXCLUSIVE)
        site.crash()
        site.recover()
        assert site.locks.held_by("T1") == []

    def test_undecided_txns_reported(self, cluster):
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.run_until(1.5)
        assert txn.txn in cluster.sites[2].undecided_txns()
        cluster.run()
        assert txn.txn not in cluster.sites[2].undecided_txns()
