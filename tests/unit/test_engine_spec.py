"""Unit tests of the sweep spec, task expansion and seed derivation."""

import pytest

from repro.engine import RunTask, SweepSpec, derive_seed


def trial(seed, protocol, waves=1):
    return (seed, protocol, waves)


class TestSweepSpec:
    def test_cells_cartesian_in_declaration_order(self):
        spec = SweepSpec("s", trial, grid={"protocol": ["a", "b"], "waves": [1, 2]})
        assert spec.cells() == [
            {"protocol": "a", "waves": 1},
            {"protocol": "a", "waves": 2},
            {"protocol": "b", "waves": 1},
            {"protocol": "b", "waves": 2},
        ]

    def test_empty_grid_is_one_cell(self):
        spec = SweepSpec("s", trial, grid={}, runs=3)
        assert spec.cells() == [{}]
        assert spec.n_tasks == 3

    def test_fixed_params_flow_into_tasks_but_not_seeds(self):
        with_fixed = SweepSpec("s", trial, grid={"protocol": ["a"]}, fixed={"waves": 7})
        without = SweepSpec("s", trial, grid={"protocol": ["a"]})
        assert with_fixed.tasks()[0].params == {"protocol": "a", "waves": 7}
        assert with_fixed.tasks()[0].seed == without.tasks()[0].seed

    def test_overlapping_fixed_and_grid_rejected(self):
        with pytest.raises(ValueError, match="both in grid and fixed"):
            SweepSpec("s", trial, grid={"waves": [1]}, fixed={"waves": 2})

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError, match="runs"):
            SweepSpec("s", trial, grid={}, runs=0)

    def test_unknown_seeding_rejected(self):
        with pytest.raises(ValueError, match="seeding"):
            SweepSpec("s", trial, grid={}, seeding="wallclock")

    def test_offset_seeding(self):
        spec = SweepSpec(
            "s", trial, grid={"protocol": ["a", "b"]}, runs=3, base_seed=100, seeding="offset"
        )
        assert [t.seed for t in spec.tasks()] == [100, 101, 102, 100, 101, 102]

    def test_derived_seeding_differs_per_cell(self):
        spec = SweepSpec("s", trial, grid={"protocol": ["a", "b"]}, runs=2)
        seeds = [t.seed for t in spec.tasks()]
        assert len(set(seeds)) == 4

    def test_base_seed_shifts_derived_seeds(self):
        a = SweepSpec("s", trial, grid={"protocol": ["a"]}, base_seed=0)
        b = SweepSpec("s", trial, grid={"protocol": ["a"]}, base_seed=1)
        assert a.tasks()[0].seed != b.tasks()[0].seed

    def test_sweep_name_shifts_derived_seeds(self):
        a = SweepSpec("alpha", trial, grid={"protocol": ["a"]})
        b = SweepSpec("beta", trial, grid={"protocol": ["a"]})
        assert a.tasks()[0].seed != b.tasks()[0].seed

    def test_summary_is_json_safe(self):
        import json

        spec = SweepSpec("s", trial, grid={"protocol": ("a", "b")}, fixed={"waves": 2})
        payload = json.loads(json.dumps(spec.summary()))
        assert payload["grid"] == {"protocol": ["a", "b"]}
        assert payload["task"].endswith("trial")
        assert payload["fixed"] == {"waves": 2}


class TestRunTask:
    def test_execute_binds_seed_and_params_by_keyword(self):
        task = RunTask(index=0, sweep="s", task=trial, params={"protocol": "x"}, run=0, seed=42)
        result = task.execute()
        assert result.value == (42, "x", 1)
        assert result.seed == 42
        assert result.index == 0


class TestDeriveSeed:
    def test_positive_63_bit(self):
        for run in range(50):
            seed = derive_seed(0, "s", {}, run)
            assert 0 <= seed < 2**63

    def test_string_coercion_for_exotic_values(self):
        # non-JSON-native param values fall back to str() rather than crash
        assert derive_seed(0, "s", {"p": frozenset([1])}, 0) == derive_seed(
            0, "s", {"p": frozenset([1])}, 0
        )
