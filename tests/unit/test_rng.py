"""Unit tests for the named random streams."""

from repro.sim.rng import RngRegistry


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngRegistry(1).stream("net")
        b = RngRegistry(1).stream("net")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("net")
        b = RngRegistry(2).stream("net")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_streams_are_independent(self):
        """Draws on one stream must not perturb another."""
        reg1 = RngRegistry(7)
        reg2 = RngRegistry(7)
        # registry 1: interleave a workload stream with the net stream
        net1 = reg1.stream("net")
        wl1 = reg1.stream("workload")
        seq1 = []
        for _ in range(5):
            wl1.random()  # extra draws on a different stream
            seq1.append(net1.random())
        # registry 2: only the net stream
        net2 = reg2.stream("net")
        seq2 = [net2.random() for _ in range(5)]
        assert seq1 == seq2

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_string_hash_salt_does_not_matter(self):
        """Derivation must not use builtin hash() (it is salted)."""
        reg = RngRegistry(3)
        value = reg.stream("x").random()
        # the derivation is SHA-based, so this value is a constant
        assert 0.0 <= value < 1.0
        again = RngRegistry(3).stream("x").random()
        assert value == again


class TestFork:
    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("sub").stream("s")
        b = RngRegistry(5).fork("sub").stream("s")
        assert a.random() == b.random()

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.fork("sub")
        assert parent.seed != child.seed

    def test_distinct_forks_differ(self):
        parent = RngRegistry(5)
        assert parent.fork("a").seed != parent.fork("b").seed
