"""Unit tests for the WAL, replica store and recovery."""

import pytest

from repro.common.errors import StorageError
from repro.protocols.states import TxnState
from repro.storage.recovery import recover_protocol_states, replay_data
from repro.storage.store import ReplicaStore
from repro.storage.wal import WriteAheadLog


class TestWal:
    def test_lsns_increase(self):
        wal = WriteAheadLog(1)
        r1 = wal.force("T1", "begin")
        r2 = wal.force("T1", "vote", vote="yes")
        assert r2.lsn == r1.lsn + 1

    def test_unknown_kind_rejected(self):
        wal = WriteAheadLog(1)
        with pytest.raises(StorageError, match="unknown log record kind"):
            wal.force("T1", "frobnicate")

    def test_decision_is_irrevocable(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "commit")
        with pytest.raises(StorageError, match="already logged"):
            wal.force("T1", "abort")

    def test_same_decision_twice_is_fine(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "commit")
        wal.force("T1", "commit")
        assert wal.decision("T1") == "commit"

    def test_decision_none_when_undecided(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        assert wal.decision("T1") is None

    def test_for_txn_filters(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        wal.force("T2", "begin")
        wal.force("T1", "vote", vote="yes")
        assert [r.kind for r in wal.for_txn("T1")] == ["begin", "vote"]

    def test_open_txns_excludes_decided(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        wal.force("T2", "begin")
        wal.force("T1", "commit")
        assert wal.open_txns() == ["T2"]

    def test_last_protocol_record_skips_apply(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        wal.force("T1", "pc")
        wal.force("T1", "apply", item="x", value=1, version=1)
        assert wal.last_protocol_record("T1").kind == "pc"


class TestStore:
    def test_host_and_read(self):
        store = ReplicaStore(1)
        store.host("x", value=5, version=2)
        assert store.read("x").value == 5
        assert store.read("x").version == 2

    def test_double_host_rejected(self):
        store = ReplicaStore(1)
        store.host("x")
        with pytest.raises(StorageError, match="already hosts"):
            store.host("x")

    def test_read_missing_copy_rejected(self):
        store = ReplicaStore(1)
        with pytest.raises(StorageError, match="no copy"):
            store.read("x")

    def test_write_bumps_version(self):
        store = ReplicaStore(1)
        store.host("x", value=0, version=0)
        store.write("x", 10, 1)
        assert store.read("x").version == 1

    def test_stale_write_rejected(self):
        store = ReplicaStore(1)
        store.host("x", value=0, version=5)
        with pytest.raises(StorageError, match="stale write"):
            store.write("x", 1, 5)

    def test_items_sorted(self):
        store = ReplicaStore(1)
        store.host("b")
        store.host("a")
        assert [name for name, __ in store.items()] == ["a", "b"]

    def test_contains(self):
        store = ReplicaStore(1)
        store.host("x")
        assert "x" in store and "y" not in store


class TestRecovery:
    def test_replay_installs_committed_writes(self):
        wal = WriteAheadLog(1)
        store = ReplicaStore(1)
        store.host("x", value=0, version=0)
        wal.force("T1", "apply", item="x", value=42, version=1)
        replayed = replay_data(wal, store)
        assert replayed == 1
        assert store.read("x").value == 42

    def test_replay_is_idempotent(self):
        wal = WriteAheadLog(1)
        store = ReplicaStore(1)
        store.host("x", value=0, version=0)
        wal.force("T1", "apply", item="x", value=42, version=1)
        replay_data(wal, store)
        assert replay_data(wal, store) == 0

    def test_replay_skips_unhosted_items(self):
        wal = WriteAheadLog(1)
        store = ReplicaStore(1)
        wal.force("T1", "apply", item="ghost", value=1, version=1)
        assert replay_data(wal, store) == 0

    def test_recover_states_by_anchor(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        wal.force("T2", "begin")
        wal.force("T2", "vote", vote="yes")
        wal.force("T3", "begin")
        wal.force("T3", "vote", vote="yes")
        wal.force("T3", "pc")
        wal.force("T4", "begin")
        wal.force("T4", "vote", vote="yes")
        wal.force("T4", "pa")
        states = recover_protocol_states(wal)
        assert states == {
            "T1": TxnState.Q,
            "T2": TxnState.W,
            "T3": TxnState.PC,
            "T4": TxnState.PA,
        }

    def test_recover_excludes_decided(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        wal.force("T1", "vote", vote="yes")
        wal.force("T1", "commit")
        assert recover_protocol_states(wal) == {}

    def test_no_vote_recovers_to_q(self):
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        wal.force("T1", "vote", vote="no")
        assert recover_protocol_states(wal)["T1"] is TxnState.Q


def _messy_wal(site: int, group_commit: bool) -> WriteAheadLog:
    """A WAL with stale, duplicate and non-hosted apply records."""
    wal = WriteAheadLog(site, group_commit=group_commit)
    wal.force("T1", "begin")
    wal.force("T1", "apply", item="x", value=10, version=1)
    wal.force("T1", "commit")
    wal.force("T2", "begin")
    wal.force("T2", "apply", item="x", value=20, version=3)  # ladder jump
    wal.force("T2", "apply", item="y", value=5, version=1)
    wal.force("T2", "commit")
    wal.force("T3", "begin")
    wal.force("T3", "apply", item="x", value=20, version=3)  # exact duplicate
    wal.force("T3", "apply", item="ghost", value=9, version=4)  # never hosted
    wal.force("T3", "apply", item="y", value=4, version=1)  # stale duplicate
    wal.force("T3", "commit")
    return wal


def _fresh_store(site: int) -> ReplicaStore:
    store = ReplicaStore(site)
    store.host("x", value=0, version=0)
    store.host("y", value=0, version=2)  # already newer than every y apply
    return store


class TestIndexedReplay:
    """The per-item apply index must replay exactly what the scan did."""

    def test_indexed_matches_full_scan_state(self):
        wal = _messy_wal(1, group_commit=True)
        scanned = _fresh_store(1)
        replay_data(wal, scanned, full_scan=True)
        indexed = _fresh_store(1)
        replay_data(wal, indexed)
        assert indexed.snapshot() == scanned.snapshot()
        assert indexed.read("x").version == 3
        assert indexed.read("x").value == 20
        assert indexed.read("y").version == 2  # stale applies skipped

    def test_indexed_installs_only_newest_version(self):
        # the scan walks x through v1 then v3 (two installs); the index
        # jumps straight to v3 (one install) — same final state
        wal = _messy_wal(1, group_commit=True)
        assert replay_data(wal, _fresh_store(1), full_scan=True) == 2
        assert replay_data(wal, _fresh_store(1)) == 1

    def test_latest_applies_tracks_newest_per_item(self):
        wal = _messy_wal(1, group_commit=True)
        assert wal.latest_applies() == {
            "x": (3, 20),
            "y": (1, 5),
            "ghost": (4, 9),
        }

    def test_legacy_wal_has_no_index_and_falls_back(self):
        legacy = _messy_wal(1, group_commit=False)
        assert legacy.latest_applies() is None
        store = _fresh_store(1)
        replayed = replay_data(legacy, store)  # silently takes the full scan
        reference = _fresh_store(1)
        replay_data(_messy_wal(1, group_commit=True), reference, full_scan=True)
        assert store.snapshot() == reference.snapshot()
        assert replayed == 2  # the scan's install count, not the index's

    def test_indexed_replay_is_idempotent(self):
        wal = _messy_wal(1, group_commit=True)
        store = _fresh_store(1)
        replay_data(wal, store)
        assert replay_data(wal, store) == 0
