"""Unit tests for the message-sequence-chart renderer."""

from repro import CatalogBuilder, Cluster, FailurePlan
from repro.sim.msc import format_event, message_sequence_chart
from repro.sim.trace import TraceRecord, Tracer


class TestFormatEvent:
    def test_send_arrow(self):
        rec = TraceRecord(1.0, 2, "send", "T1", {"mtype": "qtp1.prepare", "dst": 4})
        line = format_event(rec)
        assert "2" in line and "> 4" in line and "prepare" in line

    def test_drop_annotated(self):
        rec = TraceRecord(
            1.0, 2, "drop", "T1", {"mtype": "qtp1.vote", "dst": 4, "reason": "partitioned"}
        )
        assert "partitioned" in format_event(rec)

    def test_state_change(self):
        rec = TraceRecord(1.0, 2, "state", "T1", {"src": "W", "dst": "PC", "via": "x"})
        assert "[W -> PC]" in format_event(rec)

    def test_decision(self):
        rec = TraceRecord(1.0, 2, "decision", "T1", {"outcome": "commit", "via": "x"})
        assert "COMMIT" in format_event(rec)

    def test_uncharted_returns_none(self):
        rec = TraceRecord(1.0, 2, "quorum", "T1", {})
        assert format_event(rec) is None

    def test_crash_and_partition(self):
        assert "CRASH" in format_event(TraceRecord(1.0, 2, "crash"))
        assert "PARTITION" in format_event(
            TraceRecord(1.0, -1, "partition", "", {"groups": [[1], [2]]})
        )
        assert "HEAL" in format_event(TraceRecord(1.0, -1, "heal"))

    def test_family_prefix_stripped(self):
        rec = TraceRecord(1.0, 1, "send", "T1", {"mtype": "qtp1.t.state-req", "dst": 2})
        line = format_event(rec)
        assert "t.state-req" in line and "qtp1" not in line


class TestChart:
    def _run(self):
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3], r=2, w=2).build()
        cluster = Cluster(catalog, protocol="qtp1")
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        return cluster, txn

    def test_chart_contains_protocol_phases(self):
        cluster, txn = self._run()
        chart = message_sequence_chart(cluster.tracer, txn.txn)
        assert "vote-req" in chart
        assert "prepare" in chart
        assert "COMMIT" in chart

    def test_txn_filter(self):
        cluster, txn = self._run()
        cluster.update(origin=2, writes={"x": 2})
        cluster.run()
        chart = message_sequence_chart(cluster.tracer, txn.txn)
        # the second transaction's decision lines are excluded
        assert chart.count("coordinator decides") == 1

    def test_send_and_drop_merged(self):
        catalog = CatalogBuilder().replicated_item("x", sites=[1, 2], r=1, w=2).build()
        cluster = Cluster(catalog, protocol="qtp1")
        cluster.network.set_link_loss(1, 2, 1.0)
        txn = cluster.update(origin=1, writes={"x": 1})
        cluster.run()
        chart = message_sequence_chart(cluster.tracer, txn.txn)
        # each lost vote-req appears once (the annotated line), not twice
        lost_lines = [ln for ln in chart.splitlines() if "vote-req" in ln and "> 2" in ln]
        assert len(lost_lines) == 1
        assert "✗" in lost_lines[0]

    def test_drops_can_be_hidden(self):
        cluster, txn = self._run()
        chart = message_sequence_chart(cluster.tracer, txn.txn, include_drops=False)
        assert "✗" not in chart

    def test_truncation(self):
        cluster, txn = self._run()
        chart = message_sequence_chart(cluster.tracer, txn.txn, max_lines=5)
        lines = chart.splitlines()
        assert len(lines) == 6
        assert "more events" in lines[-1]

    def test_empty_trace(self):
        assert message_sequence_chart(Tracer()) == ""
