"""Unit tests for the bench suite registry, baselines and differ."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BaselineStore,
    BenchCase,
    BenchError,
    BenchSuite,
    compare_case,
    default_suite,
    deterministic_payload,
    encode,
)
from repro.common.errors import StoreError
from repro.engine.spec import SweepSpec


def counting_task(seed: int, scale: int = 1) -> dict:
    """Deterministic toy task obeying the bench contract."""
    return {
        "counters": {"value": (seed % 97) * scale, "scale": scale},
        "timing": {"wall_s": 0.001},
    }


def bad_task(seed: int) -> int:
    """Violates the contract: no counters dict."""
    return seed


def sleepy_task(seed: int) -> dict:
    """Sleeps past the watchdog tests' soft timeout."""
    import time

    time.sleep(0.4)
    return {"counters": {"v": seed}, "timing": {"wall_s": 0.001}}


def tiny_case(name="toy", runs=2, task=counting_task, grid=None):
    if grid is None:
        grid = {"scale": [1, 3]}
    return BenchCase(
        name=name,
        spec=SweepSpec(name=f"bench-{name}", task=task, grid=grid, runs=runs),
        repeats=2,
    )


class TestSuite:
    def test_run_case_payload_shape(self):
        suite = BenchSuite([tiny_case()])
        payload = suite.run_case("toy")
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["case"] == "toy"
        assert len(payload["rows"]) == 4  # 2 cells x 2 runs
        assert all("counters" in row for row in payload["rows"])
        wall = payload["timing"]["wall_s"]
        assert wall["n"] == 2 and wall["low"] <= wall["mean"] <= wall["high"]

    def test_measure_time_false_strips_timing(self):
        suite = BenchSuite([tiny_case()])
        payload = suite.run_case("toy", measure_time=False)
        assert "timing" not in payload
        assert deterministic_payload(payload) == payload

    def test_bad_task_contract_raises(self):
        suite = BenchSuite([tiny_case(task=bad_task, grid={})])
        with pytest.raises(BenchError, match="must return"):
            suite.run_case("toy")

    def test_duplicate_and_unknown_names_rejected(self):
        suite = BenchSuite([tiny_case()])
        with pytest.raises(ValueError, match="duplicate"):
            suite.add(tiny_case())
        with pytest.raises(KeyError, match="unknown bench case"):
            suite.case("nope")

    def test_unsafe_case_name_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            tiny_case(name="../evil")

    def test_default_suite_registers_expected_cases(self):
        suite = default_suite("quick")
        assert suite.names == [
            "scheduler_drain",
            "commit_mix",
            "heavy_workload",
            "wan_storm",
            "skewed_contention",
            "read_mostly",
            "cross_region_txn",
            "elastic_join",
            "open_loop_service",
            "ramp_ceiling",
            "rolling_upgrade",
            "flash_crowd",
            "gray_failure",
            "lock_probe",
            "net_deliver_fanout",
            "wal_append",
            "trace_record",
            "partition_churn",
            "suite_warm_pool",
            "net_fanout_flyweight",
            "zipf_sampling",
            "recovery_replay",
            "catalog_memo",
            "trace_replay_tournament",
            "sweep_streaming",
            "sweep_resume",
        ]
        with pytest.raises(ValueError, match="unknown scale"):
            default_suite("huge")


class TestSoftTimeout:
    def test_overrunning_case_raises_bench_timeout(self):
        from repro.bench import BenchTimeout

        suite = BenchSuite([tiny_case(name="sleepy", task=sleepy_task, grid={})])
        with pytest.raises(BenchTimeout, match="soft timeout"):
            suite.run_case("sleepy", timeout_s=0.15)

    def test_fast_case_is_untouched_by_the_watchdog(self):
        suite = BenchSuite([tiny_case()])
        with_watchdog = suite.run_case("toy", timeout_s=60.0, measure_time=False)
        without = suite.run_case("toy", measure_time=False)
        assert with_watchdog == without

    def test_zero_and_none_disable_the_watchdog(self):
        suite = BenchSuite([tiny_case()])
        assert suite.run_case("toy", timeout_s=0, measure_time=False)["case"] == "toy"
        assert suite.run_case("toy", timeout_s=None, measure_time=False)["case"] == "toy"


class TestBaselineStore:
    def test_roundtrip(self, tmp_path):
        suite = BenchSuite([tiny_case()])
        store = BaselineStore(tmp_path)
        payload = suite.run_case("toy")
        path = store.save(payload)
        assert path.name == "BENCH_toy.json"
        assert store.load("toy") == json.loads(encode(payload))
        assert store.known_cases() == ["toy"]

    def test_schema_mismatch_raises_store_error(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save({"case": "toy", "schema": SCHEMA_VERSION, "rows": []})
        raw = store.path_for("toy").read_text().replace(str(SCHEMA_VERSION), "99")
        store.path_for("toy").write_text(raw)
        with pytest.raises(StoreError, match="schema 99"):
            store.load("toy")

    def test_missing_baseline_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            BaselineStore(tmp_path).load("toy")


class TestCompare:
    def _payload(self, **overrides):
        suite = BenchSuite([tiny_case()])
        payload = suite.run_case("toy")
        payload.update(overrides)
        return payload

    def test_identical_payloads_clean(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        verdict = compare_case(base, fresh)
        assert verdict.ok and not verdict.warnings

    def test_counter_drift_is_a_hard_error(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["rows"][1]["counters"]["value"] += 7
        verdict = compare_case(base, fresh)
        assert not verdict.ok
        assert any("drifted" in e and "'value'" in e for e in verdict.errors)

    def test_row_count_change_is_a_hard_error(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["rows"].pop()
        verdict = compare_case(base, fresh)
        assert any("row count changed" in e for e in verdict.errors)

    def test_spec_change_is_a_hard_error(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["spec"]["runs"] = 99
        verdict = compare_case(base, fresh)
        assert any("spec changed" in e for e in verdict.errors)

    def test_schema_change_is_a_hard_error(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["schema"] = SCHEMA_VERSION + 1
        verdict = compare_case(base, fresh)
        assert any("schema mismatch" in e for e in verdict.errors)

    def test_wall_time_noise_within_tolerance_is_silent(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["timing"]["wall_s"]["mean"] = base["timing"]["wall_s"]["mean"] * 2.0
        verdict = compare_case(base, fresh, time_tolerance=5.0)
        assert verdict.ok and not verdict.warnings

    def test_wall_time_blowup_warns_but_does_not_fail(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["timing"]["wall_s"]["mean"] = base["timing"]["wall_s"]["mean"] * 50.0
        verdict = compare_case(base, fresh, time_tolerance=5.0)
        assert verdict.ok
        assert any("wall time" in w for w in verdict.warnings)

    def test_speedup_surfaces_from_derived_timing(self):
        base = self._payload()
        fresh = json.loads(encode(base))
        fresh["timing"]["derived"] = {"speedup": 1.8}
        verdict = compare_case(base, fresh)
        assert verdict.speedup == 1.8
