"""Unit tests for the message flyweight (template + stamps)."""

from repro.net.message import Message, MessageStamp, MessageTemplate


class TestMessageTemplate:
    def test_stamp_carries_envelope_fields(self):
        payload = {"vote": "yes"}
        template = MessageTemplate(1, "qtp1.vote", "T1", payload)
        stamp = template.for_dst(7)
        assert stamp.src == 1
        assert stamp.dst == 7
        assert stamp.mtype == "qtp1.vote"
        assert stamp.txn == "T1"
        assert stamp.payload is payload  # shared across the fan-out

    def test_default_txn_and_payload(self):
        template = MessageTemplate(2, "elect.announce")
        stamp = template.for_dst(3)
        assert stamp.txn == ""
        assert stamp.payload == {}

    def test_stamps_share_one_payload(self):
        template = MessageTemplate(1, "a.b", "T", {"k": 1})
        first = template.for_dst(2)
        second = template.for_dst(3)
        assert first.payload is second.payload

    def test_msg_ids_unique_and_from_shared_counter(self):
        template = MessageTemplate(1, "a.b")
        a = template.for_dst(2)
        message = Message(1, 3, "a.b")
        b = template.for_dst(4)
        # stamps and full messages draw from the same counter, in order
        assert a.msg_id < message.msg_id < b.msg_id

    def test_family_matches_message(self):
        template = MessageTemplate(1, "qtp1.t.state", "T")
        assert template.for_dst(2).family == Message(1, 2, "qtp1.t.state", "T").family

    def test_str_matches_message(self):
        payload = {"k": 1}
        stamp = MessageTemplate(1, "a.b", "T9", payload).for_dst(2)
        assert str(stamp) == str(Message(1, 2, "a.b", "T9", payload))

    def test_stamp_duck_types_message_attribute_set(self):
        # every attribute the network / tracer / handlers read off a
        # Message must exist on a stamp
        stamp = MessageTemplate(1, "a.b", "T").for_dst(2)
        for name in ("src", "dst", "mtype", "txn", "payload", "msg_id", "family"):
            assert hasattr(stamp, name), name
        assert isinstance(stamp, MessageStamp)
