"""Unit tests for the observed-transition audit."""

from repro.analysis.transitions import audit_transitions, observed_transitions
from repro.protocols.states import TxnState
from repro.sim.trace import Tracer


def trace_with_transitions(*edges):
    tracer = Tracer()
    for src, dst in edges:
        tracer.record(1.0, 1, "state", "T1", src=src, dst=dst, via="test")
    return tracer


class TestObservedTransitions:
    def test_extraction(self):
        tracer = trace_with_transitions(("Q", "W"), ("W", "PC"))
        observed = observed_transitions(tracer)
        assert (TxnState.Q, TxnState.W) in observed
        assert (TxnState.W, TxnState.PC) in observed

    def test_txn_filter(self):
        tracer = Tracer()
        tracer.record(1.0, 1, "state", "T1", src="Q", dst="W", via="x")
        tracer.record(1.0, 1, "state", "T2", src="W", dst="PC", via="x")
        assert observed_transitions(tracer, "T1") == {(TxnState.Q, TxnState.W)}


class TestAudit:
    def test_legal_corpus_conforms(self):
        audit = audit_transitions(
            [trace_with_transitions(("Q", "W"), ("W", "PC"), ("PC", "C"))]
        )
        assert audit.conforms
        assert audit.covers((TxnState.Q, TxnState.W))
        assert not audit.covers((TxnState.W, TxnState.PA))

    def test_illegal_edge_flagged(self):
        audit = audit_transitions([trace_with_transitions(("PC", "PA"))])
        assert not audit.conforms
        assert (TxnState.PC, TxnState.PA) in audit.illegal
        assert "ILLEGAL" in audit.format_table()

    def test_union_across_traces(self):
        audit = audit_transitions(
            [
                trace_with_transitions(("Q", "W")),
                trace_with_transitions(("W", "PA")),
            ]
        )
        assert audit.covers((TxnState.Q, TxnState.W), (TxnState.W, TxnState.PA))

    def test_empty_corpus(self):
        audit = audit_transitions([])
        assert audit.conforms
        assert not audit.observed
