"""The unified traffic layer: closed- and open-loop drives.

The closed-loop engine is a pure extraction of the historical driver
loops (the bench fixed-point suite proves byte-identity at scale); here
we pin the lifecycle semantics — arrival scheduling, outcome tallies,
determinism — and the open-loop mode's admission accounting identity
``offered == admitted + shed_backpressure + shed_unreachable``.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.db.cluster import Cluster
from repro.engine.resilience import RetryPolicy
from repro.experiments.service_study import (
    discover_ceiling,
    run_open_loop_service,
    service_failure_plan,
)
from repro.sim.rng import RngRegistry
from repro.traffic import AdaptiveWindow, OpenLoopResult, TrafficEngine, ramp
from repro.workload.generators import random_catalog
from repro.workload.spec import WorkloadSpec


def _engine(seed=0, protocol="qtp1", spec=None, n_sites=6, n_items=4, retry=None):
    rng = RngRegistry(seed).stream("traffic-test")
    catalog = random_catalog(rng, n_sites=n_sites, n_items=n_items, replication=3)
    cluster = Cluster(catalog, protocol=protocol, seed=seed)
    if spec is None:
        spec = WorkloadSpec(n_txns=12, arrival="fixed", mean_spacing=2.0)
    return TrafficEngine(cluster, spec.compile(catalog), rng, retry=retry)


class TestClosedLoop:
    def test_every_arrival_resolves_to_an_outcome(self):
        engine = _engine()
        outcomes, handles = engine.run_closed()
        result = engine.tally("qtp1")
        # every arrival became exactly one client outcome (fast-path
        # reads and client aborts included), and every handle a verdict
        assert result.submitted == 12
        assert (
            result.committed
            + result.client_aborted
            + result.protocol_aborted
            + result.blocked
            + result.reads_committed
            == 12
        )
        assert set(handles) <= set(outcomes)

    def test_two_runs_identical(self):
        first = _engine().run_closed()[0]
        second = _engine().run_closed()[0]
        assert first == second

    def test_tally_probe_sees_finished_cluster(self):
        engine = _engine()
        engine.run_closed()
        seen = {}
        engine.tally("qtp1", probe=lambda cluster: seen.update(now=cluster.scheduler.now))
        assert seen["now"] == engine.cluster.scheduler.now

    def test_read_only_ops_commit_on_fast_path(self):
        spec = WorkloadSpec(
            n_txns=10, arrival="fixed", mean_spacing=2.0, read_fraction=1.0
        )
        engine = _engine(spec=spec)
        outcomes, handles = engine.run_closed()
        assert not handles  # nothing went through a commit protocol
        assert set(outcomes.values()) == {"read-committed"}
        assert engine.tally("qtp1").reads_committed == 10


class TestOpenSpec:
    def test_open_requires_rate_and_duration(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="open")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="open", rate=2.0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="open", rate=2.0, duration=-1.0)

    def test_rate_rejected_on_closed_specs(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(arrival="poisson", rate=2.0)

    def test_arrivals_refused_for_open_specs(self):
        spec = WorkloadSpec(arrival="open", rate=2.0, duration=10.0)
        engine = _engine(spec=spec)
        with pytest.raises(ConfigurationError):
            engine.compiled.arrivals(engine.rng)

    def test_next_gap_refused_for_closed_specs(self):
        engine = _engine()
        with pytest.raises(ConfigurationError):
            engine.compiled.next_gap(engine.rng)

    def test_describe_names_the_service(self):
        spec = WorkloadSpec(arrival="open", rate=1.5, duration=60.0)
        assert "open@1.5/s x60s" in spec.describe()


class TestOpenLoop:
    def test_admission_accounting_identity(self):
        result = run_open_loop_service("qtp1", seed=1, rate=1.2, duration=40.0)
        assert result.offered > 0
        assert (
            result.offered
            == result.admitted + result.shed_backpressure + result.shed_unreachable
        )
        assert (
            result.admitted
            == result.committed
            + result.reads_committed
            + result.client_aborted
            + result.protocol_aborted
            + result.unresolved
        )

    def test_latency_digest_counts_decided_updates(self):
        result = run_open_loop_service("qtp1", seed=1, rate=1.2, duration=40.0)
        latency = result.latency
        assert latency["n"] == result.committed + result.protocol_aborted
        assert latency["p50"] <= latency["p99"] <= latency["p999"]
        assert result.counters()["latency_p999"] == latency["p999"]

    def test_two_runs_identical(self):
        first = run_open_loop_service("qtp1", seed=3, rate=1.0, duration=30.0)
        second = run_open_loop_service("qtp1", seed=3, rate=1.0, duration=30.0)
        assert first.counters() == second.counters()
        assert first.digest_state == second.digest_state

    def test_window_one_sheds_under_load(self):
        # a tiny admission window at a high rate must shed traffic
        result = run_open_loop_service(
            "qtp1", seed=2, rate=8.0, duration=20.0, window=1, episode_window=None
        )
        assert result.shed_backpressure > 0
        assert result.shed_rate > 0.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            run_open_loop_service("qtp1", seed=0, rate=1.0, duration=10.0, window=0)

    def test_partition_episode_sheds_unreachable(self):
        # the minority partition component refuses quorums; arrivals at
        # dead sites would be shed_unreachable, partition aborts show up
        # as client/protocol aborts — either way the quiet run commits
        # at least as much as the partitioned one
        stormy = run_open_loop_service("qtp1", seed=4, rate=1.5, duration=60.0)
        quiet = run_open_loop_service(
            "qtp1", seed=4, rate=1.5, duration=60.0, episode_window=None
        )
        assert quiet.committed >= stormy.committed

    def test_probe_sees_finished_cluster(self):
        seen = {}
        run_open_loop_service(
            "qtp1",
            seed=0,
            rate=1.0,
            duration=20.0,
            probe=lambda cluster: seen.update(events=cluster.scheduler.events_run),
        )
        assert seen["events"] > 0


class TestRetryingClient:
    CONTENDED = WorkloadSpec(n_txns=30, mean_spacing=0.3)
    POLICY = RetryPolicy(max_attempts=3, backoff=0.5, backoff_cap=2.0)

    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.5, backoff_cap=1.5)
        assert [policy.delay(k) for k in (1, 2, 3)] == [0.5, 1.0, 1.5]
        assert RetryPolicy(max_attempts=4, backoff=0.0).delay(2) == 0.0

    def test_client_aborts_are_resubmitted(self):
        engine = _engine(spec=self.CONTENDED, retry=self.POLICY)
        outcomes, handles = engine.run_closed()
        client_aborted = sum(1 for o in outcomes.values() if o == "client-aborted")
        assert engine.retry_attempts > 0
        # every re-submission was provoked by a client abort, and the
        # accounting covers attempts, not just first submissions
        assert engine.retry_attempts <= client_aborted
        assert len(outcomes) + len(handles) >= self.CONTENDED.n_txns

    def test_retrying_runs_are_deterministic(self):
        def fingerprint():
            engine = _engine(seed=5, spec=self.CONTENDED, retry=self.POLICY)
            outcomes, handles = engine.run_closed()
            return (dict(outcomes), len(handles), engine.retry_attempts)

        assert fingerprint() == fingerprint()

    def test_retries_draw_nothing_from_the_workload_stream(self):
        # the retried op is re-submitted as-is: a retrying run generates
        # the same op stream as the no-retry run, so the committed
        # histories diverge only in scheduling, never in content
        plain = _engine(seed=5, spec=self.CONTENDED)
        plain.run_closed()
        retrying = _engine(seed=5, spec=self.CONTENDED, retry=self.POLICY)
        retrying.run_closed()
        assert retrying.rng.getstate() == plain.rng.getstate()


class TestAdaptiveWindow:
    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="target_p99"):
            AdaptiveWindow(target_p99=0.0)
        with pytest.raises(ValueError, match="low <= high"):
            AdaptiveWindow(target_p99=1.0, low=4, high=2)
        with pytest.raises(ValueError, match="interval"):
            AdaptiveWindow(target_p99=1.0, interval=0.0)
        with pytest.raises(ValueError, match="hysteresis"):
            AdaptiveWindow(target_p99=1.0, hysteresis=1.0)

    def test_none_keeps_historical_counters(self):
        fixed = run_open_loop_service(
            "qtp1", seed=2, rate=1.2, duration=30.0, episode_window=None
        )
        assert "window_final" not in fixed.counters()
        assert "window_widened" not in fixed.counters()

    def test_loose_target_widens_the_window(self):
        # commit latency is protocol-round-bound (seconds); a huge
        # target leaves the controller below the dead band every
        # interval, so it widens toward `high`
        result = run_open_loop_service(
            "qtp1", seed=2, rate=1.2, duration=60.0, window=2,
            episode_window=None,
            adapt=AdaptiveWindow(target_p99=100.0, low=1, high=6, interval=10.0),
        )
        counters = result.counters()
        assert counters["window_widened"] >= 1
        assert counters.get("window_narrowed", 0) == 0
        assert counters["window_final"] > 2

    def test_tight_target_narrows_and_sheds(self):
        result = run_open_loop_service(
            "qtp1", seed=2, rate=4.0, duration=60.0, window=6,
            episode_window=None,
            adapt=AdaptiveWindow(target_p99=0.5, low=1, high=8, interval=10.0),
        )
        counters = result.counters()
        assert counters["window_narrowed"] >= 1
        assert counters["window_final"] < 6
        assert result.shed_backpressure > 0

    def test_window_clamped_to_bounds(self):
        result = run_open_loop_service(
            "qtp1", seed=2, rate=4.0, duration=90.0, window=2,
            episode_window=None,
            adapt=AdaptiveWindow(target_p99=0.5, low=2, high=8, interval=10.0),
        )
        assert result.counters()["window_final"] == 2

    def test_adaptive_runs_are_deterministic(self):
        adapt = AdaptiveWindow(target_p99=3.0, low=1, high=8, interval=10.0)
        first = run_open_loop_service(
            "qtp2", seed=6, rate=2.0, duration=50.0, episode_window=None, adapt=adapt
        )
        second = run_open_loop_service(
            "qtp2", seed=6, rate=2.0, duration=50.0, episode_window=None, adapt=adapt
        )
        assert first.counters() == second.counters()


class TestServiceFailurePlan:
    def test_majority_minority_split(self):
        plan = service_failure_plan(10.0, 5.0, list(range(9)))
        assert [type(a).__name__ for a in plan.actions] == [
            "PartitionNetwork",
            "HealNetwork",
        ]
        assert [a.time for a in plan.actions] == [10.0, 15.0]
        assert sorted(len(g) for g in plan.actions[0].groups) == [3, 6]


class TestRamp:
    def test_ceiling_discovery_is_deterministic(self):
        first = discover_ceiling("qtp1", seed=0, rates=(0.5, 1.0, 2.0), duration=30.0)
        second = discover_ceiling("qtp1", seed=0, rates=(0.5, 1.0, 2.0), duration=30.0)
        assert first.counters() == second.counters()
        assert len(first.steps) <= 3

    def test_untripped_ramp_reports_last_rate(self):
        def step(rate):
            return OpenLoopResult(
                protocol="qtp1",
                rate=rate,
                duration=10.0,
                offered=10,
                admitted=10,
                shed_backpressure=0,
                shed_unreachable=0,
                committed=10,
                reads_committed=0,
                client_aborted=0,
                protocol_aborted=0,
                unresolved=0,
                serializable=True,
                readable_fraction=1.0,
                latency={"n": 10, "p50": 1.0, "p99": 2.0},
            )

        result = ramp(step, [1.0, 2.0, 4.0])
        assert result.ceiling == 4.0
        assert result.tripped is None
        assert result.counters()["tripped"] == "none"

    def test_abort_threshold_trips(self):
        def step(rate):
            aborted = 9 if rate > 1.0 else 0
            return OpenLoopResult(
                protocol="qtp1",
                rate=rate,
                duration=10.0,
                offered=10,
                admitted=10,
                shed_backpressure=0,
                shed_unreachable=0,
                committed=10 - aborted,
                reads_committed=0,
                client_aborted=aborted,
                protocol_aborted=0,
                unresolved=0,
                serializable=True,
                readable_fraction=1.0,
                latency={"n": 10, "p50": 1.0, "p99": 2.0},
            )

        result = ramp(step, [0.5, 1.0, 2.0, 4.0])
        assert result.tripped == "abort_rate"
        assert result.ceiling == 1.0
        assert len(result.steps) == 3  # stopped at the first trip

    def test_latency_knee_trips(self):
        def step(rate):
            p99 = 1.0 if rate <= 2.0 else 50.0
            return OpenLoopResult(
                protocol="qtp1",
                rate=rate,
                duration=10.0,
                offered=10,
                admitted=10,
                shed_backpressure=0,
                shed_unreachable=0,
                committed=10,
                reads_committed=0,
                client_aborted=0,
                protocol_aborted=0,
                unresolved=0,
                serializable=True,
                readable_fraction=1.0,
                latency={"n": 10, "p50": 0.5, "p99": p99},
            )

        result = ramp(step, [1.0, 2.0, 4.0], knee_factor=4.0)
        assert result.tripped == "latency_knee"
        assert result.ceiling == 2.0
