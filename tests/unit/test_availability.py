"""Unit tests for the availability metric."""

import pytest

from repro.analysis.availability import availability_snapshot
from repro.concurrency.locks import LockManager, LockMode
from repro.net.partitions import PartitionView
from repro.replication.catalog import CatalogBuilder


@pytest.fixture
def catalog():
    return (
        CatalogBuilder()
        .replicated_item("x", sites=[1, 2, 3, 4], r=2, w=3)
        .replicated_item("y", sites=[5, 6, 7, 8], r=2, w=3)
        .build()
    )


def snapshot(catalog, groups=None, locks=None, blocked=None, active=None):
    sites = range(1, 9)
    partition = PartitionView(sites, groups)
    managers = {s: LockManager(s) for s in sites}
    for site, item, txn in locks or []:
        managers[site].acquire(txn, item, LockMode.EXCLUSIVE)
    return availability_snapshot(
        catalog,
        partition,
        managers,
        blocked or {},
        active_sites=set(active) if active else None,
    )


class TestHealthy:
    def test_fully_connected_all_available(self, catalog):
        report = snapshot(catalog)
        assert report.readable_fraction == 1.0
        assert report.writable_fraction == 1.0

    def test_row_lookup(self, catalog):
        report = snapshot(catalog)
        row = report.row({1, 2, 3, 4, 5, 6, 7, 8}, "x")
        assert row.usable_votes == 4

    def test_missing_row_raises(self, catalog):
        report = snapshot(catalog)
        with pytest.raises(KeyError):
            report.row({1}, "x")


class TestVotingFactor:
    def test_partition_splits_votes(self, catalog):
        report = snapshot(catalog, groups=[[1, 2, 3], [4, 5], [6, 7, 8]])
        g1 = report.row({1, 2, 3}, "x")
        # with all three copies usable, 3 votes meet both r=2 and w=3
        assert g1.usable_votes == 3
        assert g1.readable and g1.writable
        g2x = report.row({4, 5}, "x")
        assert not g2x.readable  # one x copy
        g3y = report.row({6, 7, 8}, "y")
        assert g3y.readable and g3y.writable

    def test_crashed_sites_lose_votes(self, catalog):
        report = snapshot(catalog, active=[2, 3, 4, 5, 6, 7, 8])
        row = report.row(set(range(1, 9)), "x")
        assert row.usable_votes == 3


class TestLockFactor:
    def test_blocked_lock_removes_copy(self, catalog):
        report = snapshot(
            catalog,
            locks=[(1, "x", "T1"), (2, "x", "T1"), (3, "x", "T1")],
            blocked={1: {"T1"}, 2: {"T1"}, 3: {"T1"}},
        )
        row = report.row(set(range(1, 9)), "x")
        assert row.usable_votes == 1
        assert not row.readable
        assert row.blocked_sites == (1, 2, 3)

    def test_lock_by_unblocked_txn_does_not_count(self, catalog):
        """Only *blocked* transactions make copies unavailable; a lock
        held by a transaction still progressing is transient."""
        report = snapshot(
            catalog,
            locks=[(1, "x", "T1"), (2, "x", "T1")],
            blocked={},  # T1 is not blocked anywhere
        )
        row = report.row(set(range(1, 9)), "x")
        assert row.usable_votes == 4

    def test_both_factors_compose(self, catalog):
        report = snapshot(
            catalog,
            groups=[[1, 2, 3], [4, 5, 6, 7, 8]],
            locks=[(1, "x", "T1")],
            blocked={1: {"T1"}},
        )
        g1 = report.row({1, 2, 3}, "x")
        assert g1.usable_votes == 2
        assert g1.readable and not g1.writable


class TestAggregates:
    def test_fractions(self, catalog):
        report = snapshot(catalog, groups=[[1, 2, 3, 4], [5, 6, 7, 8]])
        # x fully in G1 (RW), absent from G2; y vice versa
        assert report.readable_fraction == 0.5
        assert report.writable_fraction == 0.5

    def test_describe_renders(self, catalog):
        text = snapshot(catalog).describe()
        assert "availability" in text and "x" in text

    def test_empty_report(self):
        from repro.analysis.availability import AvailabilityReport

        report = AvailabilityReport([])
        assert report.readable_fraction == 0.0
