"""Unit tests for the trace recorder.

The columnar store must be observationally identical to the legacy
list-of-dataclasses store — materialized records compare equal, dumps
are byte-identical — while the capacity modes differ on purpose:
truncate drops *new* records, ring drops the *oldest*.
"""

import pytest

from repro.sim.trace import TraceRecord, Tracer


class TestRecording:
    def test_record_and_len(self, tracer):
        tracer.record(1.0, 3, "send", "T1", mtype="x.y")
        assert len(tracer) == 1

    def test_records_preserve_order(self, tracer):
        tracer.record(1.0, 1, "a")
        tracer.record(2.0, 2, "b")
        assert [r.category for r in tracer] == ["a", "b"]

    def test_capacity_drops_overflow(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), 0, "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3


class TestQueries:
    def test_where_by_category(self, tracer):
        tracer.record(1.0, 1, "send")
        tracer.record(2.0, 1, "deliver")
        assert len(tracer.where(category="send")) == 1

    def test_where_by_site_and_txn(self, tracer):
        tracer.record(1.0, 1, "send", "T1")
        tracer.record(1.0, 2, "send", "T1")
        tracer.record(1.0, 1, "send", "T2")
        assert len(tracer.where(site=1, txn="T1")) == 1

    def test_where_with_predicate(self, tracer):
        tracer.record(1.0, 1, "send", detail_key=1)
        tracer.record(2.0, 1, "send", detail_key=2)
        found = tracer.where(category="send", pred=lambda r: r.detail["detail_key"] == 2)
        assert len(found) == 1

    def test_count(self, tracer):
        for __ in range(3):
            tracer.record(1.0, 1, "drop")
        assert tracer.count("drop") == 3

    def test_decisions_takes_last_per_site(self, tracer):
        tracer.record(1.0, 1, "decision", "T1", outcome="commit")
        tracer.record(2.0, 2, "decision", "T1", outcome="commit")
        assert tracer.decisions("T1") == {1: "commit", 2: "commit"}

    def test_decisions_scoped_to_txn(self, tracer):
        tracer.record(1.0, 1, "decision", "T1", outcome="commit")
        tracer.record(1.0, 1, "decision", "T2", outcome="abort")
        assert tracer.decisions("T1") == {1: "commit"}

    def test_message_counts(self, tracer):
        tracer.record(1.0, 1, "send", mtype="a.b")
        tracer.record(1.0, 1, "send", mtype="a.b")
        tracer.record(1.0, 1, "send", mtype="a.c")
        assert tracer.message_counts() == {"a.b": 2, "a.c": 1}

    @pytest.mark.parametrize("columnar", [True, False])
    def test_message_counts_buckets_missing_mtype(self, columnar):
        tracer = Tracer(columnar=columnar)
        tracer.record(1.0, 1, "send")
        tracer.record(1.0, 1, "send", mtype="a.b")
        assert tracer.message_counts() == {"?": 1, "a.b": 1}

    def test_dump_renders_all_records(self, tracer):
        tracer.record(1.0, 1, "send", "T1", mtype="m")
        text = tracer.dump()
        assert "send" in text and "T1" in text


def _fill(tracer: Tracer, n: int = 30) -> None:
    """A deterministic mixed workload exercising every append path."""
    for i in range(n):
        t = float(i)
        site = i % 5
        txn = f"T{i % 3}"
        kind = i % 6
        if kind == 0:
            tracer.record_send(t, site, txn, "qtp1.vote-req", (site + 1) % 5)
        elif kind == 1:
            tracer.record_deliver(t, site, txn, "qtp1.vote-req", (site + 4) % 5)
        elif kind == 2:
            tracer.record_drop(t, site, txn, "qtp1.ack", (site + 2) % 5, "partitioned")
        elif kind == 3:
            tracer.record(t, site, "state", txn, src="W", dst="PC")
        elif kind == 4:
            tracer.record(t, site, "decision", txn, outcome="commit")
        else:
            tracer.record(t, -1, "partition", groups=[[0, 1], [2, 3, 4]])


class TestColumnarLegacyEquivalence:
    def test_records_and_dump_identical(self):
        col = Tracer(columnar=True)
        leg = Tracer(columnar=False)
        _fill(col)
        _fill(leg)
        assert col.records == leg.records
        assert col.dump() == leg.dump()
        assert list(col) == list(leg)
        assert len(col) == len(leg)

    def test_queries_identical(self):
        col = Tracer(columnar=True)
        leg = Tracer(columnar=False)
        _fill(col)
        _fill(leg)
        for kwargs in [
            {"category": "send"},
            {"category": "send", "site": 0},
            {"category": "decision", "txn": "T1"},
            {"txn": "T2"},
            {"site": 3},
            {"category": "send", "pred": lambda r: r.detail["dst"] == 1},
            {"category": "no-such-category"},
            {"txn": "no-such-txn"},
            {"category": "send", "txn": "T0", "site": 0},
        ]:
            assert col.where(**kwargs) == leg.where(**kwargs), kwargs
        assert col.count("deliver") == leg.count("deliver")
        assert col.count("deliver", site=2) == leg.count("deliver", site=2)
        assert col.decisions("T1") == leg.decisions("T1")
        assert col.message_counts() == leg.message_counts()
        assert col.txn_scope("T0") == leg.txn_scope("T0")

    def test_compact_details_expand_in_kwarg_order(self):
        tracer = Tracer()
        tracer.record_send(1.0, 0, "T", "m", 2)
        tracer.record_deliver(2.0, 2, "T", "m", 0)
        tracer.record_drop(3.0, 0, "T", "m", 2, "sender-down")
        send, deliver, drop = tracer.records
        assert list(send.detail) == ["mtype", "dst"]
        assert list(deliver.detail) == ["mtype", "src"]
        assert list(drop.detail) == ["mtype", "dst", "reason"]
        assert drop.detail["reason"] == "sender-down"

    def test_materialized_views_are_memoized(self):
        tracer = Tracer()
        _fill(tracer, 10)
        assert tracer.records[0] is tracer.records[0]
        assert tracer.where(category="send")[0] is tracer.records[0]

    def test_queries_see_appends_after_a_query(self):
        # indexes extend incrementally once built
        tracer = Tracer()
        tracer.record_send(1.0, 0, "T", "m", 1)
        assert tracer.count("send") == 1
        tracer.record_send(2.0, 0, "T", "m", 2)
        tracer.record(3.0, 1, "decision", "T", outcome="abort")
        assert tracer.count("send") == 2
        assert tracer.decisions("T") == {1: "abort"}


class TestCapacityTruncate:
    @pytest.mark.parametrize("columnar", [True, False])
    def test_drops_new_records_past_capacity(self, columnar):
        tracer = Tracer(capacity=4, columnar=columnar)
        _fill(tracer, 10)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # the *first* four records survive
        assert [r.time for r in tracer.records] == [0.0, 1.0, 2.0, 3.0]

    @pytest.mark.parametrize("columnar", [True, False])
    def test_capacity_zero_records_nothing(self, columnar):
        tracer = Tracer(capacity=0, columnar=columnar)
        _fill(tracer, 5)
        assert len(tracer) == 0
        assert tracer.dropped == 5
        assert tracer.records == []
        assert tracer.where(category="send") == []


class TestRingBuffer:
    def test_ring_requires_capacity_and_columnar(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(ring=True)
        with pytest.raises(ValueError, match="columnar"):
            Tracer(capacity=4, ring=True, columnar=False)

    def test_keeps_newest_and_counts_evictions(self):
        tracer = Tracer(capacity=4, ring=True)
        _fill(tracer, 10)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # the *last* four records survive, oldest -> newest
        assert [r.time for r in tracer.records] == [6.0, 7.0, 8.0, 9.0]

    def test_under_capacity_behaves_plainly(self):
        tracer = Tracer(capacity=10, ring=True)
        _fill(tracer, 6)
        assert len(tracer) == 6
        assert tracer.dropped == 0
        assert [r.time for r in tracer.records] == [float(i) for i in range(6)]

    def test_queries_after_wrap_match_surviving_window(self):
        ring = Tracer(capacity=7, ring=True)
        full = Tracer()
        _fill(ring, 30)
        _fill(full, 30)
        survivors = full.records[-7:]
        assert ring.records == survivors
        assert ring.where(category="send") == [
            r for r in survivors if r.category == "send"
        ]
        assert ring.count("state") == sum(1 for r in survivors if r.category == "state")
        expected = {}
        for r in survivors:
            if r.category == "send":
                expected[r.detail["mtype"]] = expected.get(r.detail["mtype"], 0) + 1
        assert ring.message_counts() == expected

    def test_interleaved_queries_and_wraps(self):
        tracer = Tracer(capacity=3, ring=True)
        tracer.record_send(1.0, 0, "T", "m", 1)
        assert tracer.count("send") == 1
        for t in (2.0, 3.0, 4.0, 5.0):
            tracer.record_send(t, 0, "T", "m", 1)
        assert tracer.count("send") == 3
        assert [r.time for r in tracer.records] == [3.0, 4.0, 5.0]
        assert tracer.dropped == 2


class TestRecordRendering:
    def test_str_shape(self):
        rec = TraceRecord(2.0, 1, "send", "T1", {"mtype": "m", "dst": 3})
        text = str(rec)
        assert "send" in text and "T1" in text and "'mtype': 'm'" in text

    def test_dump_subset(self):
        tracer = Tracer()
        _fill(tracer, 12)
        subset = tracer.where(category="send")
        assert tracer.dump(subset) == "\n".join(str(r) for r in subset)
