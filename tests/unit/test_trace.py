"""Unit tests for the trace recorder."""

from repro.sim.trace import Tracer


class TestRecording:
    def test_record_and_len(self, tracer):
        tracer.record(1.0, 3, "send", "T1", mtype="x.y")
        assert len(tracer) == 1

    def test_records_preserve_order(self, tracer):
        tracer.record(1.0, 1, "a")
        tracer.record(2.0, 2, "b")
        assert [r.category for r in tracer] == ["a", "b"]

    def test_capacity_drops_overflow(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), 0, "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3


class TestQueries:
    def test_where_by_category(self, tracer):
        tracer.record(1.0, 1, "send")
        tracer.record(2.0, 1, "deliver")
        assert len(tracer.where(category="send")) == 1

    def test_where_by_site_and_txn(self, tracer):
        tracer.record(1.0, 1, "send", "T1")
        tracer.record(1.0, 2, "send", "T1")
        tracer.record(1.0, 1, "send", "T2")
        assert len(tracer.where(site=1, txn="T1")) == 1

    def test_where_with_predicate(self, tracer):
        tracer.record(1.0, 1, "send", detail_key=1)
        tracer.record(2.0, 1, "send", detail_key=2)
        found = tracer.where(category="send", pred=lambda r: r.detail["detail_key"] == 2)
        assert len(found) == 1

    def test_count(self, tracer):
        for __ in range(3):
            tracer.record(1.0, 1, "drop")
        assert tracer.count("drop") == 3

    def test_decisions_takes_last_per_site(self, tracer):
        tracer.record(1.0, 1, "decision", "T1", outcome="commit")
        tracer.record(2.0, 2, "decision", "T1", outcome="commit")
        assert tracer.decisions("T1") == {1: "commit", 2: "commit"}

    def test_decisions_scoped_to_txn(self, tracer):
        tracer.record(1.0, 1, "decision", "T1", outcome="commit")
        tracer.record(1.0, 1, "decision", "T2", outcome="abort")
        assert tracer.decisions("T1") == {1: "commit"}

    def test_message_counts(self, tracer):
        tracer.record(1.0, 1, "send", mtype="a.b")
        tracer.record(1.0, 1, "send", mtype="a.b")
        tracer.record(1.0, 1, "send", mtype="a.c")
        assert tracer.message_counts() == {"a.b": 2, "a.c": 1}

    def test_dump_renders_all_records(self, tracer):
        tracer.record(1.0, 1, "send", "T1", mtype="m")
        text = tracer.dump()
        assert "send" in text and "T1" in text
