"""Unit tests for the Network partition-epoch reachable-peer cache.

The cache is only sound if *every* event that can change who may talk
to whom — partition, heal, crash, recover, registration — busts it.
These tests pin the invalidation triggers, the fast/slow path handoff
around filters and lossy links, and the equivalence of the cached and
legacy fan-out paths on full storms.
"""

import pytest

from repro.common.errors import SiteDownError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Tracer


class Recorder(Node):
    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.received = []
        self.on("t.ping", self.received.append)


def build(n=4, cached=True):
    scheduler = Scheduler()
    network = Network(scheduler, Tracer(), RngRegistry(0), fanout_cache=cached)
    nodes = {i: Recorder(i, network) for i in range(1, n + 1)}
    return scheduler, network, nodes


class TestEpochInvalidation:
    def test_partition_heal_crash_recover_register_bump_epoch(self):
        scheduler, network, nodes = build()
        epochs = [network.epoch]

        network.set_partition([[1, 2], [3, 4]])
        epochs.append(network.epoch)
        network.heal()
        epochs.append(network.epoch)
        network.crash_site(2)
        epochs.append(network.epoch)
        network.recover_site(2)
        epochs.append(network.epoch)
        Recorder(99, network)
        epochs.append(network.epoch)
        assert epochs == sorted(set(epochs)), "every event must bump the epoch"

    def test_partition_busts_sendable_cache(self):
        scheduler, network, nodes = build()
        nodes[1].send(3, "t.ping")
        scheduler.run()
        assert network._sendable, "fast send should have populated the cache"
        network.set_partition([[1, 2], [3, 4]])
        assert not network._sendable, "partition must clear the cache"
        nodes[1].send(3, "t.ping")
        scheduler.run()
        assert len(nodes[3].received) == 1  # only the pre-partition message

    def test_heal_busts_cache_and_restores_reachability(self):
        scheduler, network, nodes = build()
        network.set_partition([[1], [2, 3, 4]])
        nodes[1].send(2, "t.ping")
        scheduler.run()
        assert nodes[2].received == []
        network.heal()
        assert not network._sendable
        nodes[1].send(2, "t.ping")
        scheduler.run()
        assert len(nodes[2].received) == 1

    def test_crash_in_flight_busts_fast_delivery(self):
        scheduler, network, nodes = build()
        nodes[1].send(2, "t.ping")  # scheduled via the epoch-stamped fast path
        scheduler.call_at(0.5, network.crash_site, 2)
        scheduler.run()
        assert nodes[2].received == []
        drops = network.tracer.where(category="drop")
        assert drops and drops[0].detail["reason"] == "destination-down"

    def test_partition_in_flight_busts_fast_delivery(self):
        scheduler, network, nodes = build()
        nodes[1].send(2, "t.ping")
        scheduler.call_at(0.5, network.set_partition, [[1], [2, 3, 4]])
        scheduler.run()
        assert nodes[2].received == []
        drops = network.tracer.where(category="drop")
        assert drops and drops[0].detail["reason"] == "partitioned-in-flight"

    def test_recover_in_flight_still_delivers(self):
        """A message to a down-but-reachable site takes the checked path;
        if the site recovers before arrival, delivery goes through —
        same as the legacy evaluation."""
        scheduler, network, nodes = build()
        network.crash_site(2)
        nodes[1].send(2, "t.ping")
        scheduler.call_at(0.5, network.recover_site, 2)
        scheduler.run()
        assert len(nodes[2].received) == 1

    def test_direct_node_crash_cannot_sneak_a_delivery(self):
        """Crashing a node behind the network's back (site hooks do this
        in tests) must still prevent delivery: the fast path re-checks
        liveness at arrival."""
        scheduler, network, nodes = build()
        nodes[1].send(2, "t.ping")
        scheduler.call_at(0.5, nodes[2].crash)  # bypasses crash_site
        scheduler.run()
        assert nodes[2].received == []
        assert network.delivered == 0


class TestFastSlowHandoff:
    def test_filters_disable_fast_path_and_clear_restores_it(self):
        scheduler, network, nodes = build()
        assert network._fast_path
        network.add_filter(lambda m: m.dst == 3)
        assert not network._fast_path
        nodes[1].send(3, "t.ping")
        nodes[1].send(2, "t.ping")
        scheduler.run()
        assert nodes[3].received == []
        assert len(nodes[2].received) == 1
        network.clear_filters()
        assert network._fast_path

    def test_link_loss_disables_fast_path_until_healed(self):
        scheduler, network, nodes = build()
        network.set_link_loss(1, 2, 1.0)
        assert not network._fast_path
        nodes[1].send(2, "t.ping")
        scheduler.run()
        assert nodes[2].received == []
        network.heal()  # clears link loss
        assert network._fast_path

    def test_fanout_cache_false_never_uses_fast_path(self):
        scheduler, network, nodes = build(cached=False)
        assert not network._fast_path
        nodes[1].broadcast([2, 3, 4], "t.ping")
        scheduler.run()
        assert all(len(nodes[i].received) == 1 for i in (2, 3, 4))
        assert not network._sendable


class TestFanout:
    def test_fanout_matches_manual_sends(self):
        for cached in (False, True):
            scheduler, network, nodes = build(cached=cached)
            network.set_partition([[1, 2, 3], [4]])
            network.crash_site(3)
            nodes[1].broadcast([1, 2, 3, 4], "t.ping", "T1")
            scheduler.run()
            assert len(nodes[2].received) == 1
            assert nodes[3].received == []
            assert nodes[4].received == []
            assert network.sent == 3  # self excluded
            assert network.delivered == 1
            assert network.dropped == 2

    def test_fanout_unknown_destination_dropped_per_message(self):
        scheduler, network, nodes = build()
        network.fanout(1, [2, 77], "t.ping", "T1")
        scheduler.run()
        assert len(nodes[2].received) == 1
        drops = network.tracer.where(category="drop")
        assert [d.detail["reason"] for d in drops] == ["unknown-destination"]

    def test_fanout_from_dead_sender_raises_at_node_level(self):
        scheduler, network, nodes = build()
        network.crash_site(1)
        with pytest.raises(SiteDownError):
            nodes[1].broadcast([2, 3], "t.ping")

    def test_network_level_fanout_from_dead_sender_drops(self):
        scheduler, network, nodes = build()
        network.crash_site(1)
        network.fanout(1, [2, 3], "t.ping")
        scheduler.run()
        drops = network.tracer.where(category="drop")
        assert [d.detail["reason"] for d in drops] == ["sender-down", "sender-down"]

    def test_storm_counters_identical_cached_vs_legacy(self):
        """Full storm with partitions, crashes and heals: both paths
        must agree on every counter and every delivered message."""
        tallies = []
        for cached in (False, True):
            scheduler, network, nodes = build(n=9, cached=cached)
            everyone = list(nodes)
            for wave in range(3):
                for node in nodes.values():
                    if node.alive:
                        node.broadcast(everyone, "t.ping", f"W{wave}")
                scheduler.run()
                network.set_partition([everyone[:4], everyone[4:]])
                network.crash_site(everyone[wave])
                for node in nodes.values():
                    if node.alive:
                        node.broadcast(everyone, "t.ping", f"P{wave}")
                scheduler.run()
                network.heal()
                network.recover_site(everyone[wave])
            tallies.append(
                (
                    network.sent,
                    network.delivered,
                    network.dropped,
                    scheduler.events_run,
                    tuple(len(n.received) for n in nodes.values()),
                )
            )
        assert tallies[0] == tallies[1]


class TestMessageSlots:
    def test_message_remains_frozen_and_unique(self):
        a = Message(1, 2, "t.ping", "T1")
        b = Message(1, 2, "t.ping", "T1")
        assert a.msg_id != b.msg_id
        with pytest.raises(AttributeError):
            a.dst = 9
