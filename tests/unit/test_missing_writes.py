"""Unit tests for the missing-writes tracker (Eager & Sevcik extension)."""

from repro.replication.missing_writes import MissingWritesTracker


class TestTracking:
    def test_initially_read_one_allowed(self):
        tracker = MissingWritesTracker()
        assert tracker.read_one_allowed("x")

    def test_unreached_copy_records_missing_write(self):
        tracker = MissingWritesTracker()
        tracker.record_write("x", 1, all_sites=[1, 2, 3], reached=[1, 2])
        assert not tracker.copy_is_current("x", 3)
        assert tracker.copy_is_current("x", 1)
        assert not tracker.read_one_allowed("x")

    def test_repair_clears_missing(self):
        tracker = MissingWritesTracker()
        tracker.record_write("x", 1, [1, 2, 3], [1, 2])
        tracker.record_write("x", 2, [1, 2, 3], [1, 2])
        tracker.record_repair("x", 3, through_version=2)
        assert tracker.copy_is_current("x", 3)
        assert tracker.read_one_allowed("x")

    def test_partial_repair_keeps_newer_gaps(self):
        tracker = MissingWritesTracker()
        tracker.record_write("x", 1, [1, 2], [1])
        tracker.record_write("x", 2, [1, 2], [1])
        tracker.record_repair("x", 2, through_version=1)
        assert not tracker.copy_is_current("x", 2)
        assert tracker.missing_map("x")[2] == {2}

    def test_repair_of_current_copy_is_noop(self):
        tracker = MissingWritesTracker()
        tracker.record_repair("x", 1, through_version=5)
        assert tracker.copy_is_current("x", 1)

    def test_items_tracked_independently(self):
        tracker = MissingWritesTracker()
        tracker.record_write("x", 1, [1, 2], [1])
        assert tracker.read_one_allowed("y")
        assert not tracker.read_one_allowed("x")

    def test_missing_map_is_defensive_copy(self):
        tracker = MissingWritesTracker()
        tracker.record_write("x", 1, [1, 2], [1])
        snapshot = tracker.missing_map("x")
        snapshot[2].add(99)
        assert tracker.missing_map("x")[2] == {1}
