"""Unit tests for the streaming sweep backend: result sinks, the
JSONL row-stream artifact, shared payloads, and the bounded worker
cache."""

import gzip
import io
import json
import pickle
import random

import pytest

from repro.common.errors import StoreError
from repro.engine import (
    STREAM_KIND,
    STREAM_SCHEMA,
    CellFoldSink,
    CountAcc,
    FoldSink,
    JsonlSink,
    MeanAcc,
    MemorySink,
    NoopSink,
    PrintingSink,
    ReducerSink,
    ResultStore,
    RowReducer,
    SharedPayload,
    SweepSpec,
    TeeSink,
    iter_stream_rows,
    load_stream,
    run_sweep,
    scan_partial_stream,
)
from repro.engine.executor import WORKER_CACHE_LIMIT, clear_worker_cache, worker_cache


def probe_task(seed: int, scale: int = 1) -> dict:
    """Cheap, seed-sensitive, module-level (so it pickles into pools)."""
    rng = random.Random(seed)
    return {"x": rng.random() * scale, "even": seed % 2 == 0}


def fragile_task(seed: int) -> int:
    if seed == 3:
        raise RuntimeError("boom")
    return seed


def payload_probe_task(seed: int, table: object) -> int:
    """Reads a resolved SharedPayload value."""
    return table[seed % len(table)] + seed


def _spec(name: str = "s", runs: int = 6, task=probe_task, **kwargs) -> SweepSpec:
    return SweepSpec(name=name, task=task, grid={"scale": [1, 3]}, runs=runs, **kwargs)


def _reducer() -> RowReducer:
    return RowReducer((("x", "x", MeanAcc()), ("even", "even", CountAcc())))


class TestMemorySinkIsTheDefaultPath:
    def test_results_and_artifact_identical_to_default(self):
        default = run_sweep(_spec())
        sunk = run_sweep(_spec(), sink=MemorySink())
        assert sunk.results == default.results
        assert ResultStore.encode(ResultStore.payload(sunk)) == ResultStore.encode(
            ResultStore.payload(default)
        )

    def test_aggregate_carries_rows_and_digest(self):
        outcome = run_sweep(_spec(), sink=MemorySink())
        assert outcome.aggregate["rows"] == len(outcome.results)
        assert outcome.aggregate["digest"] > 0


class TestNoopSink:
    def test_keeps_nothing_but_digests_everything(self):
        noop = NoopSink()
        outcome = run_sweep(_spec(), sink=noop)
        assert outcome.results == []
        memory = MemorySink()
        run_sweep(_spec(), sink=memory)
        assert noop.digest == memory.digest
        assert noop.rows_emitted == memory.rows_emitted


class TestPrintingSink:
    def test_writes_one_canonical_line_per_row(self):
        stream = io.StringIO()
        run_sweep(_spec(runs=3), sink=PrintingSink(stream))
        lines = [line for line in stream.getvalue().splitlines() if line]
        eager = run_sweep(_spec(runs=3))
        assert [json.loads(line) for line in lines] == [
            json.loads(json.dumps(ResultStore.row_payload(r), sort_keys=True))
            for r in eager.results
        ]


class TestJsonlSink:
    def test_round_trip_matches_eager_rows(self, tmp_path):
        path = tmp_path / "rows.jsonl.gz"
        run_sweep(_spec(), sink=JsonlSink(path))
        spec_summary, rows = load_stream(path)
        eager = run_sweep(_spec())
        assert spec_summary["name"] == "s"
        assert rows == [
            json.loads(json.dumps(ResultStore.row_payload(r), sort_keys=True))
            for r in eager.results
        ]

    def test_bytes_identical_across_worker_counts(self, tmp_path):
        blobs = set()
        for w in (1, 2, 3):
            path = tmp_path / f"w{w}.jsonl.gz"
            run_sweep(_spec(), workers=w, sink=JsonlSink(path))
            blobs.add(path.read_bytes())
        assert len(blobs) == 1

    def test_incremental_writes_match_one_shot_compression(self, tmp_path):
        """Per-row gzip writes and one batch write are byte-identical."""
        path = tmp_path / "rows.jsonl.gz"
        run_sweep(_spec(), sink=JsonlSink(path))
        logical = gzip.decompress(path.read_bytes())
        buf = io.BytesIO()
        with gzip.GzipFile(fileobj=buf, mode="wb", compresslevel=6, mtime=0) as gz:
            gz.write(logical)
        assert buf.getvalue() == path.read_bytes()

    def test_header_and_end_records(self, tmp_path):
        path = tmp_path / "rows.jsonl.gz"
        run_sweep(_spec(runs=2), sink=JsonlSink(path))
        records = [
            json.loads(line)
            for line in gzip.decompress(path.read_bytes()).decode().splitlines()
        ]
        assert records[0]["type"] == "header"
        assert records[0]["schema"] == STREAM_SCHEMA
        assert records[0]["kind"] == STREAM_KIND
        assert records[-1] == {"type": "end", "records": len(records) - 1}

    def test_task_failure_aborts_to_truncated_artifact(self, tmp_path):
        path = tmp_path / "partial.jsonl.gz"
        spec = SweepSpec("frail", fragile_task, grid={}, runs=6, seeding="offset")
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(spec, sink=JsonlSink(path))
        with pytest.raises(StoreError, match="truncated"):
            list(iter_stream_rows(path))

    def test_truncation_tripwire(self, tmp_path):
        path = tmp_path / "cut.jsonl.gz"
        sink = JsonlSink(path)
        run_sweep(_spec(runs=2), sink=sink)
        lines = gzip.decompress(path.read_bytes()).splitlines(keepends=True)
        cut = tmp_path / "no-end.jsonl.gz"
        cut.write_bytes(gzip.compress(b"".join(lines[:-1]), mtime=0))
        with pytest.raises(StoreError, match="truncated"):
            list(iter_stream_rows(cut))

    def test_end_count_mismatch_fails(self, tmp_path):
        path = tmp_path / "bad-count.jsonl.gz"
        lines = [
            json.dumps({"type": "header", "schema": STREAM_SCHEMA, "kind": STREAM_KIND}),
            json.dumps({"type": "row", "index": 0}),
            json.dumps({"type": "end", "records": 7}),
        ]
        path.write_bytes(gzip.compress("\n".join(lines).encode(), mtime=0))
        with pytest.raises(StoreError, match="inconsistent"):
            list(iter_stream_rows(path))

    def test_foreign_and_stale_headers_fail(self, tmp_path):
        foreign = tmp_path / "foreign.jsonl.gz"
        foreign.write_bytes(
            gzip.compress(json.dumps({"type": "header", "kind": "other"}).encode())
        )
        with pytest.raises(StoreError, match="bad header"):
            list(iter_stream_rows(foreign))
        stale = tmp_path / "stale.jsonl.gz"
        stale.write_bytes(
            gzip.compress(
                json.dumps(
                    {"type": "header", "kind": STREAM_KIND, "schema": STREAM_SCHEMA + 1}
                ).encode()
            )
        )
        with pytest.raises(StoreError, match="schema"):
            list(iter_stream_rows(stale))

    def test_unknown_record_type_fails(self, tmp_path):
        path = tmp_path / "odd.jsonl.gz"
        lines = [
            json.dumps({"type": "header", "schema": STREAM_SCHEMA, "kind": STREAM_KIND}),
            json.dumps({"type": "mystery"}),
        ]
        path.write_bytes(gzip.compress("\n".join(lines).encode()))
        with pytest.raises(StoreError, match="unknown record type"):
            list(iter_stream_rows(path))

    def test_corrupt_and_empty_files_fail(self, tmp_path):
        corrupt = tmp_path / "corrupt.jsonl.gz"
        corrupt.write_bytes(b"this is not gzip")
        with pytest.raises(StoreError):
            list(iter_stream_rows(corrupt))
        empty = tmp_path / "empty.jsonl.gz"
        empty.write_bytes(gzip.compress(b""))
        with pytest.raises(StoreError, match="empty"):
            list(iter_stream_rows(empty))


class TestCorruptionErrorsNameOffsets:
    """Corruption errors must name the artifact path and the byte offset
    of the bad record, not just a category word."""

    def _artifact(self, tmp_path, lines, name="bad.jsonl.gz"):
        path = tmp_path / name
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode(), mtime=0))
        return path

    def test_garbled_record_names_path_and_offset(self, tmp_path):
        header = json.dumps(
            {"type": "header", "schema": STREAM_SCHEMA, "kind": STREAM_KIND}
        )
        path = self._artifact(tmp_path, [header, "{not json"])
        with pytest.raises(StoreError) as err:
            list(iter_stream_rows(path))
        message = str(err.value)
        assert str(path) in message
        # the bad record starts right after the header line + newline
        assert f"byte offset {len(header) + 1}" in message

    def test_unknown_record_type_names_offset(self, tmp_path):
        header = json.dumps(
            {"type": "header", "schema": STREAM_SCHEMA, "kind": STREAM_KIND}
        )
        path = self._artifact(tmp_path, [header, json.dumps({"type": "mystery"})])
        with pytest.raises(StoreError, match="unknown record type") as err:
            list(iter_stream_rows(path))
        assert f"byte offset {len(header) + 1}" in str(err.value)

    def test_inconsistent_end_record_names_offset(self, tmp_path):
        header = json.dumps(
            {"type": "header", "schema": STREAM_SCHEMA, "kind": STREAM_KIND}
        )
        row = json.dumps({"type": "row", "index": 0})
        end = json.dumps({"type": "end", "records": 7})
        path = self._artifact(tmp_path, [header, row, end])
        with pytest.raises(StoreError, match="inconsistent") as err:
            list(iter_stream_rows(path))
        assert f"byte offset {len(header) + len(row) + 2}" in str(err.value)

    def test_truncated_stream_reports_clean_prefix_end(self, tmp_path):
        path = tmp_path / "full.jsonl.gz"
        run_sweep(_spec(runs=2), sink=JsonlSink(path))
        logical = gzip.decompress(path.read_bytes()).splitlines(keepends=True)
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(gzip.compress(b"".join(logical[:-1]), mtime=0))
        with pytest.raises(StoreError, match="truncated") as err:
            list(iter_stream_rows(cut))
        prefix = sum(len(line) for line in logical[:-1])
        assert f"byte offset {prefix}" in str(err.value)

    def test_load_stream_wraps_unreadable_files_in_store_error(self, tmp_path):
        not_gzip = tmp_path / "raw.jsonl.gz"
        not_gzip.write_bytes(b"plainly not gzip")
        with pytest.raises(StoreError, match="cannot read"):
            load_stream(not_gzip)
        empty = tmp_path / "void.jsonl.gz"
        empty.write_bytes(gzip.compress(b""))
        with pytest.raises(StoreError, match="empty"):
            load_stream(empty)


class TestScanPartialStream:
    """The salvage half of the resume protocol."""

    def _aborted(self, tmp_path):
        path = tmp_path / "partial.jsonl.gz"
        spec = SweepSpec("frail", fragile_task, grid={}, runs=6, seeding="offset")
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(spec, sink=JsonlSink(path))
        return path, spec

    def test_salvages_committed_prefix_of_aborted_artifact(self, tmp_path):
        path, spec = self._aborted(tmp_path)
        committed = scan_partial_stream(path, expect_spec=spec.summary())
        assert sorted(committed) == [0, 1, 2]  # seed 3 aborted the sweep
        assert committed[2]["value"] == 2
        assert all(row["index"] == i for i, row in committed.items())

    def test_nonexistent_path_is_a_fresh_start(self, tmp_path):
        assert scan_partial_stream(tmp_path / "never-written.jsonl.gz") == {}

    def test_complete_artifact_is_rejected(self, tmp_path):
        path = tmp_path / "done.jsonl.gz"
        run_sweep(_spec(runs=2), sink=JsonlSink(path))
        with pytest.raises(StoreError, match="nothing to resume"):
            scan_partial_stream(path)

    def test_foreign_header_schema_and_spec_are_rejected(self, tmp_path):
        foreign = tmp_path / "foreign.jsonl.gz"
        foreign.write_bytes(
            gzip.compress(json.dumps({"type": "header", "kind": "other"}).encode())
        )
        with pytest.raises(StoreError, match="refusing to resume"):
            scan_partial_stream(foreign)

        stale = tmp_path / "stale.jsonl.gz"
        stale.write_bytes(
            gzip.compress(
                json.dumps(
                    {"type": "header", "kind": STREAM_KIND, "schema": STREAM_SCHEMA + 1}
                ).encode()
            )
        )
        with pytest.raises(StoreError, match="schema"):
            scan_partial_stream(stale)

        path, spec = self._aborted(tmp_path)
        other = SweepSpec("other", fragile_task, grid={}, runs=6, seeding="offset")
        with pytest.raises(StoreError, match="different sweep spec"):
            scan_partial_stream(path, expect_spec=other.summary())

    def test_unreadable_and_headerless_artifacts_are_rejected(self, tmp_path):
        not_gzip = tmp_path / "raw.jsonl.gz"
        not_gzip.write_bytes(b"plainly not gzip")
        with pytest.raises(StoreError, match="no intact header"):
            scan_partial_stream(not_gzip)
        empty = tmp_path / "void.jsonl.gz"
        empty.write_bytes(gzip.compress(b""))
        with pytest.raises(StoreError, match="no intact header"):
            scan_partial_stream(empty)

    def test_record_cut_mid_line_ends_the_scan_silently(self, tmp_path):
        path, _ = self._aborted(tmp_path)
        logical = gzip.decompress(path.read_bytes()).splitlines(keepends=True)
        # chop the final committed row in half, crash-style: no newline
        damaged = b"".join(logical[:-1]) + logical[-1][: len(logical[-1]) // 2]
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(gzip.compress(damaged, mtime=0))
        assert sorted(scan_partial_stream(cut)) == [0, 1]

    def test_truncated_gzip_stream_ends_the_scan_silently(self, tmp_path):
        path, _ = self._aborted(tmp_path)
        raw = path.read_bytes()
        torn = tmp_path / "torn.jsonl.gz"
        torn.write_bytes(raw[: len(raw) - 8])  # lose the gzip trailer + tail
        committed = scan_partial_stream(torn)
        assert set(committed) <= {0, 1, 2}

    def test_duplicate_indices_keep_the_first_row(self, tmp_path):
        lines = [
            json.dumps({"type": "header", "schema": STREAM_SCHEMA, "kind": STREAM_KIND}),
            json.dumps({"type": "row", "index": 0, "value": "first"}),
            json.dumps({"type": "row", "index": 0, "value": "second"}),
        ]
        path = tmp_path / "dupes.jsonl.gz"
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode(), mtime=0))
        committed = scan_partial_stream(path)
        assert committed[0]["value"] == "first"


class TestReducerAndFoldSinks:
    def test_reducer_sink_matches_eager_fold(self):
        eager = _reducer()
        for result in run_sweep(_spec()).results:
            eager.fold(result)
        outcome = run_sweep(_spec(), sink=ReducerSink(_reducer()))
        assert outcome.results == []
        assert outcome.aggregate == eager.summary()

    def test_reduce_kwarg_matches_sink_and_serial(self):
        serial = run_sweep(_spec(), reduce=_reducer())
        parallel = run_sweep(_spec(), workers=2, chunksize=2, reduce=_reducer())
        sunk = run_sweep(_spec(), sink=ReducerSink(_reducer()))
        assert serial.aggregate == parallel.aggregate == sunk.aggregate
        assert serial.results == parallel.results == []

    def test_reduce_template_is_never_mutated(self):
        template = _reducer()
        run_sweep(_spec(), reduce=template)
        assert template.rows == 0 and template.digest == 0

    def test_sink_and_reduce_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(_spec(), sink=NoopSink(), reduce=_reducer())

    def test_fold_sink_sees_every_result_in_order(self):
        seen = []
        run_sweep(_spec(runs=3), sink=FoldSink(seen.append))
        assert [r.index for r in seen] == list(range(len(seen)))
        assert seen == run_sweep(_spec(runs=3)).results


class TestCellFoldSink:
    def test_matches_by_cell_grouping(self):
        outcome = run_sweep(_spec())
        folder = CellFoldSink(lambda state, r: (state or 0) + r.value["x"])
        for result in outcome.results:
            folder.emit(result)
        expected = [
            (params, sum(r.value["x"] for r in results))
            for params, results in outcome.by_cell()
        ]
        assert folder.cells() == expected


class TestTeeSink:
    def test_children_agree_and_rows_come_from_keeper(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(tmp_path / "rows.jsonl.gz")
        reducer = ReducerSink(_reducer())
        tee = TeeSink(jsonl, reducer, memory)
        outcome = run_sweep(_spec(), sink=tee)
        assert tee.keeps_rows
        assert outcome.results == memory.results
        assert jsonl.digest == reducer.digest == memory.digest == tee.digest
        assert tee.summary() == jsonl.summary()

    def test_needs_a_child(self):
        with pytest.raises(ValueError):
            TeeSink()


class TestSharedPayload:
    def test_publish_resolves_to_same_object(self):
        table = [10, 20, 30]
        handle = SharedPayload.publish(table, label="t")
        try:
            assert handle.get() is table
            assert handle.describe() == {"shared": "t"}
        finally:
            handle.release()

    def test_pickle_round_trip_resolves_without_registry(self):
        from repro.engine import shared as shared_mod

        handle = SharedPayload.publish({"k": list(range(50))}, label="remote")
        try:
            clone = pickle.loads(pickle.dumps(handle))
            # simulate a foreign process: neither registry holds the token
            shared_mod._PUBLISHED.pop(handle.token, None)
            shared_mod._ATTACHED.pop(handle.token, None)
            value = clone.get()
            assert value == {"k": list(range(50))}
            assert clone.get() is value  # per-process attach cache
        finally:
            handle.release()

    def test_inline_fallback_when_shared_memory_unavailable(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.engine import shared as shared_mod

        def refuse(*args, **kwargs):
            raise OSError("no shm here")

        monkeypatch.setattr(shared_memory, "SharedMemory", refuse)
        handle = SharedPayload.publish([1, 2, 3], label="inline")
        try:
            clone = pickle.loads(pickle.dumps(handle))
            shared_mod._PUBLISHED.pop(handle.token, None)
            shared_mod._ATTACHED.pop(handle.token, None)
            assert clone.get() == [1, 2, 3]
        finally:
            handle.release()

    def test_release_then_resolve_fails_loudly(self):
        handle = SharedPayload.publish([1], label="gone")
        handle.release()
        with pytest.raises(StoreError):
            handle.get()

    def test_handles_compare_and_hash_by_token(self):
        handle = SharedPayload.publish("v", label="eq")
        try:
            clone = pickle.loads(pickle.dumps(handle))
            assert handle == clone and hash(handle) == hash(clone)
            assert handle != SharedPayload.publish("v", label="eq")
        finally:
            handle.release()

    def test_sweep_resolves_payloads_and_headers_stay_content_free(self):
        table = list(range(100, 110))
        handle = SharedPayload.publish(table, label="table")
        try:
            spec = SweepSpec(
                "shared",
                payload_probe_task,
                grid={},
                runs=4,
                seeding="offset",
                fixed={"table": handle},
            )
            serial = run_sweep(spec)
            parallel = run_sweep(spec, workers=2)
            assert serial.results == parallel.results
            assert serial.values() == [table[s % len(table)] + s for s in range(4)]
            # artifact headers carry the label, never pickled bytes
            assert serial.spec["fixed"] == {"table": {"shared": "table"}}
            # results keep the cheap handle, not the resolved value
            assert serial.results[0].params["table"] == handle
        finally:
            handle.release()


class TestWorkerCacheBound:
    def test_fifo_eviction_at_limit(self):
        clear_worker_cache()
        try:
            builds = []
            for i in range(WORKER_CACHE_LIMIT + 8):
                worker_cache(("bound", i), lambda i=i: builds.append(i) or i)
            assert len(builds) == WORKER_CACHE_LIMIT + 8
            # the newest keys are still cached...
            newest = WORKER_CACHE_LIMIT + 7
            worker_cache(("bound", newest), lambda: builds.append("rebuilt"))
            assert "rebuilt" not in builds
            # ...while the oldest were evicted FIFO and rebuild on demand
            worker_cache(("bound", 0), lambda: builds.append("rebuilt"))
            assert "rebuilt" in builds
        finally:
            clear_worker_cache()
