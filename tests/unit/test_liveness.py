"""Unit tests for the liveness timeline extraction."""

import math

from repro.analysis.liveness import termination_timeline
from repro.sim.trace import Tracer


def make_trace(with_fault=True, with_decisions=True):
    tracer = Tracer()
    tracer.record(0.0, 1, "coord-begin", "T1", participants=[1, 2])
    if with_fault:
        tracer.record(3.5, 1, "crash")
        tracer.record(3.5, -1, "partition", groups=[[1], [2]])
    tracer.record(6.0, 2, "election", "T1", round=1)
    tracer.record(8.0, 2, "term-phase1", "T1", attempt=1)
    if with_decisions:
        tracer.record(12.0, 2, "decision", "T1", outcome="abort", via="term")
        tracer.record(13.0, 3, "decision", "T1", outcome="abort", via="term")
    return tracer


class TestTimeline:
    def test_latencies(self):
        timeline = termination_timeline(make_trace(), "T1")
        assert timeline.begin_time == 0.0
        assert timeline.first_fault_time == 3.5
        assert timeline.last_decision_time == 13.0
        assert timeline.decision_latency == 13.0
        assert timeline.termination_latency == 9.5
        assert timeline.ever_decided

    def test_counts(self):
        timeline = termination_timeline(make_trace(), "T1")
        assert timeline.elections == 1
        assert timeline.term_attempts == 1

    def test_no_decisions(self):
        timeline = termination_timeline(make_trace(with_decisions=False), "T1")
        assert not timeline.ever_decided
        assert math.isnan(timeline.termination_latency)

    def test_no_fault(self):
        timeline = termination_timeline(make_trace(with_fault=False), "T1")
        assert math.isnan(timeline.first_fault_time)

    def test_empty_trace(self):
        timeline = termination_timeline(Tracer(), "T1")
        assert timeline.begin_time == 0.0
        assert not timeline.ever_decided
