"""Unit tests for the random workload / placement / fault generators."""

import random

import pytest

from repro.sim.failures import CrashSite, PartitionNetwork
from repro.workload.generators import (
    random_catalog,
    random_fault_plan,
    random_partition_groups,
    random_update,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestRandomCatalog:
    def test_respects_counts(self, rng):
        catalog = random_catalog(rng, n_sites=8, n_items=4, replication=3)
        assert len(catalog.item_names) == 4
        for item in catalog.item_names:
            assert len(catalog.sites_of(item)) == 3
            assert catalog.v(item) == 3

    def test_constraints_always_hold(self):
        """The constructor validates; 200 seeds must all build."""
        for seed in range(200):
            catalog = random_catalog(random.Random(seed), n_sites=6, n_items=3, replication=4)
            for item in catalog.item_names:
                r, w, v = catalog.r(item), catalog.w(item), catalog.v(item)
                assert r + w > v and 2 * w > v

    def test_replication_beyond_sites_rejected(self, rng):
        with pytest.raises(ValueError):
            random_catalog(rng, n_sites=3, replication=5)

    def test_deterministic_in_seed(self):
        a = random_catalog(random.Random(7), 8, 4, 3)
        b = random_catalog(random.Random(7), 8, 4, 3)
        for item in a.item_names:
            assert a.sites_of(item) == b.sites_of(item)
            assert (a.r(item), a.w(item)) == (b.r(item), b.w(item))


class TestRandomUpdate:
    def test_origin_hosts_first_item(self, rng):
        catalog = random_catalog(rng, 8, 4, 3)
        for __ in range(50):
            origin, writes = random_update(rng, catalog, max_items=2)
            assert writes
            assert any(origin in catalog.sites_of(item) for item in writes)

    def test_items_exist(self, rng):
        catalog = random_catalog(rng, 8, 4, 3)
        __, writes = random_update(rng, catalog)
        for item in writes:
            assert item in catalog


class TestRandomPartition:
    def test_groups_partition_the_sites(self, rng):
        sites = list(range(1, 9))
        groups = random_partition_groups(rng, sites, 3)
        assert len(groups) == 3
        flat = [s for g in groups for s in g]
        assert sorted(flat) == sites
        assert all(g for g in groups)

    def test_too_many_groups_rejected(self, rng):
        with pytest.raises(ValueError):
            random_partition_groups(rng, [1, 2], 3)


class TestRandomFaultPlan:
    def test_contains_crash_and_partition(self, rng):
        plan = random_fault_plan(rng, sites=[1, 2, 3, 4], coordinator=1)
        kinds = [type(a) for a in plan.actions]
        assert CrashSite in kinds
        assert PartitionNetwork in kinds

    def test_times_within_window(self, rng):
        plan = random_fault_plan(
            rng, sites=[1, 2, 3, 4], coordinator=1, t_window=(2.0, 3.0)
        )
        for action in plan.actions:
            assert 2.0 <= action.time <= 3.0

    def test_heal_appended(self, rng):
        plan = random_fault_plan(rng, [1, 2, 3], 1, heal_at=50.0)
        assert any(a.time == 50.0 for a in plan.actions)

    def test_extra_crashes_capped_by_pool(self, rng):
        plan = random_fault_plan(
            rng, sites=[1, 2], coordinator=1, n_extra_crashes=10
        )
        crashes = [a for a in plan.actions if isinstance(a, CrashSite)]
        assert len(crashes) <= 2
