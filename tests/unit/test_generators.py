"""Unit tests for the random workload / placement / fault generators."""

import random

import pytest

from repro.sim.failures import CrashSite, PartitionNetwork
from repro.workload.generators import (
    CATALOG_MEMO_LIMIT,
    _deal_stragglers,
    memoized_catalog,
    random_catalog,
    random_fault_plan,
    random_partition_groups,
    random_update,
    region_storm_plan,
    wan_regions,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestRandomCatalog:
    def test_respects_counts(self, rng):
        catalog = random_catalog(rng, n_sites=8, n_items=4, replication=3)
        assert len(catalog.item_names) == 4
        for item in catalog.item_names:
            assert len(catalog.sites_of(item)) == 3
            assert catalog.v(item) == 3

    def test_constraints_always_hold(self):
        """The constructor validates; 200 seeds must all build."""
        for seed in range(200):
            catalog = random_catalog(random.Random(seed), n_sites=6, n_items=3, replication=4)
            for item in catalog.item_names:
                r, w, v = catalog.r(item), catalog.w(item), catalog.v(item)
                assert r + w > v and 2 * w > v

    def test_replication_beyond_sites_rejected(self, rng):
        with pytest.raises(ValueError):
            random_catalog(rng, n_sites=3, replication=5)

    def test_deterministic_in_seed(self):
        a = random_catalog(random.Random(7), 8, 4, 3)
        b = random_catalog(random.Random(7), 8, 4, 3)
        for item in a.item_names:
            assert a.sites_of(item) == b.sites_of(item)
            assert (a.r(item), a.w(item)) == (b.r(item), b.w(item))


class TestRandomUpdate:
    def test_origin_hosts_first_item(self, rng):
        catalog = random_catalog(rng, 8, 4, 3)
        for __ in range(50):
            origin, writes = random_update(rng, catalog, max_items=2)
            assert writes
            assert any(origin in catalog.sites_of(item) for item in writes)

    def test_items_exist(self, rng):
        catalog = random_catalog(rng, 8, 4, 3)
        __, writes = random_update(rng, catalog)
        for item in writes:
            assert item in catalog


class TestRandomPartition:
    def test_groups_partition_the_sites(self, rng):
        sites = list(range(1, 9))
        groups = random_partition_groups(rng, sites, 3)
        assert len(groups) == 3
        flat = [s for g in groups for s in g]
        assert sorted(flat) == sites
        assert all(g for g in groups)

    def test_too_many_groups_rejected(self, rng):
        with pytest.raises(ValueError):
            random_partition_groups(rng, [1, 2], 3)


class TestRegionStormPlan:
    def test_each_site_defects_at_most_once_even_at_prob_one(self):
        """Straggler-bias regression: the old in-place walk let a site
        that defected into a later component defect again when that
        component was processed.  Decided in one pass, every site moves
        at most once — even with certain defection."""
        for seed in range(30):
            components = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
            moves = _deal_stragglers(random.Random(seed), components, straggler_prob=1.0)
            movers = [site for site, __, __ in moves]
            assert sorted(movers) == sorted(set(movers))
            assert len(movers) == 9  # prob 1.0: everyone moves exactly once
            for site, src, dst in moves:
                assert site in components[src]  # judged on the pre-storm deal
                assert dst != src

    def test_singleton_components_never_defect(self):
        moves = _deal_stragglers(random.Random(0), [[1], [2, 3]], straggler_prob=1.0)
        assert all(site != 1 for site, __, __ in moves)

    def test_straggler_rate_is_unbiased(self):
        """The per-site defection rate must track straggler_prob; the
        pre-fix double-draws pushed it measurably above."""
        prob = 0.15
        draws = moved = 0
        for seed in range(120):
            components = [list(range(c * 8, c * 8 + 8)) for c in range(3)]
            moves = _deal_stragglers(random.Random(seed), components, prob)
            draws += 24
            moved += len(moves)
        rate = moved / draws
        # 120 waves x 24 sites = 2880 draws: 4 sigma ~ 0.027
        assert abs(rate - prob) < 0.03

    def test_plan_shape_and_determinism(self):
        regions = wan_regions(4, 8)
        a = region_storm_plan(random.Random(5), regions, waves=3)
        b = region_storm_plan(random.Random(5), regions, waves=3)
        assert a.actions == b.actions
        partitions = [x for x in a.actions if isinstance(x, PartitionNetwork)]
        assert len(partitions) == 3
        all_sites = sorted(s for r in regions for s in r)
        for action in partitions:
            flat = sorted(s for g in action.groups for s in g)
            assert flat == all_sites  # components stay a partition of the universe


class TestRandomFaultPlan:
    def test_contains_crash_and_partition(self, rng):
        plan = random_fault_plan(rng, sites=[1, 2, 3, 4], coordinator=1)
        kinds = [type(a) for a in plan.actions]
        assert CrashSite in kinds
        assert PartitionNetwork in kinds

    def test_times_within_window(self, rng):
        plan = random_fault_plan(
            rng, sites=[1, 2, 3, 4], coordinator=1, t_window=(2.0, 3.0)
        )
        for action in plan.actions:
            assert 2.0 <= action.time <= 3.0

    def test_heal_appended(self, rng):
        plan = random_fault_plan(rng, [1, 2, 3], 1, heal_at=50.0)
        assert any(a.time == 50.0 for a in plan.actions)

    def test_extra_crashes_capped_by_pool(self, rng):
        plan = random_fault_plan(
            rng, sites=[1, 2], coordinator=1, n_extra_crashes=10
        )
        crashes = [a for a in plan.actions if isinstance(a, CrashSite)]
        assert len(crashes) <= 2


class TestMemoizedCatalog:
    """State-capture memoization must never shift the caller's stream."""

    def _build(self, r):
        return random_catalog(r, n_sites=6, n_items=4, replication=3)

    def test_hit_restores_stream_exactly(self):
        from repro.engine.executor import clear_worker_cache

        clear_worker_cache()
        key = ("memo-test", 6, 4, 3)
        direct_rng = random.Random(99)
        direct = self._build(direct_rng)
        miss_rng = random.Random(99)
        missed = memoized_catalog(miss_rng, key, self._build)
        hit_rng = random.Random(99)
        fetched = memoized_catalog(hit_rng, key, self._build)
        assert fetched is missed  # genuinely cached, not rebuilt
        assert fetched.item_names == direct.item_names
        assert all(
            fetched.sites_of(i) == direct.sites_of(i) for i in direct.item_names
        )
        # the draws after the build are bit-identical on all three paths
        probes = [r.random() for r in (direct_rng, miss_rng, hit_rng)]
        assert probes[0] == probes[1] == probes[2]

    def test_different_pre_state_misses(self):
        from repro.engine.executor import clear_worker_cache

        clear_worker_cache()
        key = ("memo-test-seeded", 6, 4, 3)
        a = memoized_catalog(random.Random(1), key, self._build)
        b = memoized_catalog(random.Random(2), key, self._build)
        assert a is not b  # different seed, different catalog

    def test_mutable_returns_isolated_fork(self):
        from repro.engine.executor import clear_worker_cache

        clear_worker_cache()
        key = ("memo-test-mutable", 6, 4, 3)
        first = memoized_catalog(random.Random(7), key, self._build, mutable=True)
        item = first.item_names[0]
        first.admit_site(99, {item: 1})
        second = memoized_catalog(random.Random(7), key, self._build, mutable=True)
        assert 99 in first.sites_of(item)
        assert 99 not in second.sites_of(item)  # the cached original is pristine

    def test_memo_is_fifo_bounded(self):
        from repro.engine.executor import clear_worker_cache, worker_cache

        clear_worker_cache()
        for seed in range(CATALOG_MEMO_LIMIT + 10):
            memoized_catalog(random.Random(seed), ("memo-test-bound", 6), self._build)
        memo = worker_cache(("catalog-memo", "memo-test-bound"), dict)
        assert len(memo) <= CATALOG_MEMO_LIMIT
