"""Unit tests of the result store, artifact encoding and aggregation."""

from dataclasses import dataclass

import pytest

from repro.common.errors import StoreError
from repro.engine import (
    SCHEMA_VERSION,
    ResultStore,
    SweepSpec,
    count_where,
    fraction_of,
    group_by,
    jsonable,
    map_runs,
    mean_of,
    run_sweep,
    values_of,
)


def trial(seed, kind):
    return {"kind": kind, "score": float(seed % 7)}


@dataclass
class Sample:
    name: str
    values: tuple
    tags: frozenset


class TestJsonable:
    def test_dataclass_flattens(self):
        out = jsonable(Sample("a", (1, 2), frozenset(["y", "x"])))
        assert out == {"name": "a", "values": [1, 2], "tags": ["x", "y"]}

    def test_nested_containers(self):
        assert jsonable({"k": [(1, 2), {3}]}) == {"k": [[1, 2], [3]]}

    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert jsonable(v) == v

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            jsonable(object())


class TestResultStore:
    def _outcome(self):
        spec = SweepSpec("demo", trial, grid={"kind": ["a", "b"]}, runs=3)
        return run_sweep(spec)

    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(self._outcome())
        assert path == store.path_for("demo")
        payload = store.load("demo")
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["sweep"] == "demo"
        assert len(payload["results"]) == 6
        assert payload["spec"]["grid"] == {"kind": ["a", "b"]}

    def test_rows_keep_task_order(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(self._outcome())
        rows = store.results("demo")
        assert [r["index"] for r in rows] == list(range(6))

    def test_newer_schema_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(self._outcome())
        path = store.path_for("demo")
        path.write_text(path.read_text().replace(f'"schema": {SCHEMA_VERSION}', '"schema": 99'))
        with pytest.raises(StoreError, match="schema 99"):
            store.load("demo")

    def test_older_schema_rejected_not_reinterpreted(self, tmp_path):
        """A stale artifact must raise, never be handed back unguarded."""
        store = ResultStore(tmp_path)
        store.save(self._outcome())
        path = store.path_for("demo")
        path.write_text(path.read_text().replace(f'"schema": {SCHEMA_VERSION}', '"schema": 0'))
        with pytest.raises(StoreError, match="schema 0"):
            store.load("demo")

    def test_schemaless_payload_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("demo").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("demo").write_text('{"sweep": "demo", "results": []}')
        with pytest.raises(StoreError, match="schema None"):
            store.load("demo")

    def test_store_error_is_still_a_value_error(self, tmp_path):
        """Callers that predate StoreError catch ValueError; keep them working."""
        assert issubclass(StoreError, ValueError)

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResultStore(tmp_path).load("nope")

    def test_sweep_names_sanitized_into_filenames(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.path_for("a/b c").name == "a-b-c.json"

    def test_encoding_is_canonical(self):
        outcome = self._outcome()
        a = ResultStore.encode(ResultStore.payload(outcome))
        b = ResultStore.encode(ResultStore.payload(outcome))
        assert a == b
        assert a.endswith("\n")


class TestAggregationHelpers:
    def _rows(self):
        spec = SweepSpec("agg", trial, grid={"kind": ["a", "b"]}, runs=4, seeding="offset")
        return run_sweep(spec).results

    def test_group_by_partitions_rows(self):
        groups = group_by(self._rows(), "kind")
        assert sorted(groups) == ["a", "b"]
        assert all(len(rows) == 4 for rows in groups.values())

    def test_helpers_work_on_live_and_loaded_rows(self, tmp_path):
        spec = SweepSpec("agg", trial, grid={"kind": ["a"]}, runs=4, seeding="offset")
        store = ResultStore(tmp_path)
        outcome = run_sweep(spec, store=store)
        live = mean_of(outcome.results, lambda v: v["score"])
        loaded = mean_of(store.results("agg"), lambda v: v["score"])
        assert live == loaded

    def test_values_count_fraction(self):
        rows = self._rows()
        scores = values_of(rows, lambda v: v["score"])
        assert len(scores) == 8
        n_zero = count_where(rows, lambda v: v["score"] == 0.0)
        assert fraction_of(rows, lambda v: v["score"] == 0.0) == n_zero / 8

    def test_empty_inputs(self):
        assert mean_of([]) == 0.0
        assert fraction_of([], lambda v: True) == 0.0


class TestMapRuns:
    def test_maps_seeds_in_order(self):
        out = map_runs(trial, seeds=[3, 1, 2], kind="a")
        assert [v["score"] for v in out] == [3.0, 1.0, 2.0]

    def test_parallel_matches_serial(self):
        serial = map_runs(trial, seeds=range(10), kind="b")
        parallel = map_runs(trial, seeds=range(10), workers=3, kind="b")
        assert serial == parallel
