"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.scheduler import Scheduler


class TestScheduling:
    def test_starts_at_time_zero(self, scheduler):
        assert scheduler.now == 0.0

    def test_call_at_runs_at_absolute_time(self, scheduler):
        seen = []
        scheduler.call_at(5.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [5.0]

    def test_call_after_is_relative(self, scheduler):
        seen = []
        scheduler.call_at(3.0, lambda: scheduler.call_after(2.0, lambda: seen.append(scheduler.now)))
        scheduler.run()
        assert seen == [5.0]

    def test_events_run_in_time_order(self, scheduler):
        order = []
        scheduler.call_at(3.0, order.append, "b")
        scheduler.call_at(1.0, order.append, "a")
        scheduler.call_at(7.0, order.append, "c")
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self, scheduler):
        order = []
        scheduler.call_at(1.0, order.append, "first")
        scheduler.call_at(1.0, order.append, "second")
        scheduler.call_at(1.0, order.append, "third")
        scheduler.run()
        assert order == ["first", "second", "third"]

    def test_zero_delay_event_runs(self, scheduler):
        seen = []
        scheduler.call_after(0.0, seen.append, 1)
        scheduler.run()
        assert seen == [1]

    def test_scheduling_in_the_past_raises(self, scheduler):
        scheduler.call_at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError, match="cannot schedule"):
            scheduler.call_at(3.0, lambda: None)

    def test_negative_delay_raises(self, scheduler):
        with pytest.raises(ValueError, match="negative delay"):
            scheduler.call_after(-1.0, lambda: None)

    def test_args_are_passed(self, scheduler):
        seen = []
        scheduler.call_at(1.0, lambda a, b: seen.append((a, b)), 1, 2)
        scheduler.run()
        assert seen == [(1, 2)]


class TestCancellation:
    def test_cancelled_event_does_not_run(self, scheduler):
        seen = []
        handle = scheduler.call_at(1.0, seen.append, "x")
        handle.cancel()
        scheduler.run()
        assert seen == []
        assert not handle.fired

    def test_cancel_after_fire_is_noop(self, scheduler):
        handle = scheduler.call_at(1.0, lambda: None)
        scheduler.run()
        assert handle.fired
        handle.cancel()  # must not raise

    def test_active_property(self, scheduler):
        handle = scheduler.call_at(1.0, lambda: None)
        assert handle.active
        handle.cancel()
        assert not handle.active

    def test_pending_excludes_cancelled(self, scheduler):
        h1 = scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(2.0, lambda: None)
        assert scheduler.pending == 2
        h1.cancel()
        assert scheduler.pending == 1

    def test_cancel_while_queued_is_skipped_between_neighbours(self, scheduler):
        """A cancelled entry sitting between two live ones is skipped at
        pop time without disturbing their order or the clock."""
        order = []
        scheduler.call_at(1.0, order.append, "a")
        victim = scheduler.call_at(2.0, order.append, "victim")
        scheduler.call_at(3.0, order.append, "b")
        victim.cancel()
        scheduler.run()
        assert order == ["a", "b"]
        assert scheduler.now == 3.0
        assert scheduler.events_run == 2

    def test_cancel_from_inside_an_event(self, scheduler):
        seen = []
        later = scheduler.call_at(5.0, seen.append, "late")
        scheduler.call_at(1.0, later.cancel)
        scheduler.run()
        assert seen == []
        assert scheduler.pending == 0

    def test_double_cancel_decrements_once(self, scheduler):
        handle = scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert scheduler.pending == 1


class TestPendingCounter:
    """The O(1) ``pending`` counter must agree with a queue scan through
    every push / cancel / pop interleaving."""

    def _live_scan(self, scheduler):
        return sum(1 for _, _, h in scheduler._queue if h.active)

    def test_counts_pushes(self, scheduler):
        for t in (1.0, 2.0, 3.0):
            scheduler.call_at(t, lambda: None)
        assert scheduler.pending == 3 == self._live_scan(scheduler)

    def test_counter_through_cancel_and_pop(self, scheduler):
        handles = [scheduler.call_at(float(t + 1), lambda: None) for t in range(6)]
        handles[0].cancel()
        handles[3].cancel()
        assert scheduler.pending == 4 == self._live_scan(scheduler)
        scheduler.step()  # skips cancelled handles[0], runs handles[1]
        assert scheduler.pending == 3 == self._live_scan(scheduler)
        scheduler.step()  # runs handles[2]
        assert scheduler.pending == 2 == self._live_scan(scheduler)
        scheduler.run()
        assert scheduler.pending == 0
        assert scheduler.events_run == 4

    def test_counter_through_run_until(self, scheduler):
        early = scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(2.0, lambda: None)
        late = scheduler.call_at(10.0, lambda: None)
        early.cancel()
        scheduler.run_until(5.0)
        assert scheduler.pending == 1 == self._live_scan(scheduler)
        late.cancel()
        assert scheduler.pending == 0 == self._live_scan(scheduler)
        scheduler.run()
        assert scheduler.pending == 0

    def test_counter_with_events_scheduling_events(self, scheduler):
        def fanout():
            for _ in range(3):
                scheduler.call_after(1.0, lambda: None)

        scheduler.call_at(1.0, fanout)
        assert scheduler.pending == 1
        scheduler.step()
        assert scheduler.pending == 3 == self._live_scan(scheduler)
        scheduler.run()
        assert scheduler.pending == 0

    def test_tie_break_is_fifo_within_same_time(self, scheduler):
        """(time, seq) ordering: equal-time events run in scheduling
        order even when interleaved with cancellations."""
        order = []
        first = scheduler.call_at(1.0, order.append, "first")
        scheduler.call_at(1.0, order.append, "second")
        first.cancel()
        scheduler.call_at(1.0, order.append, "third")
        scheduler.run()
        assert order == ["second", "third"]


class TestRunControl:
    def test_run_returns_final_time(self, scheduler):
        scheduler.call_at(4.5, lambda: None)
        assert scheduler.run() == 4.5

    def test_run_until_stops_at_deadline(self, scheduler):
        seen = []
        scheduler.call_at(1.0, seen.append, "early")
        scheduler.call_at(10.0, seen.append, "late")
        scheduler.run_until(5.0)
        assert seen == ["early"]
        assert scheduler.now == 5.0
        scheduler.run()
        assert seen == ["early", "late"]

    def test_run_until_includes_boundary(self, scheduler):
        seen = []
        scheduler.call_at(5.0, seen.append, "exact")
        scheduler.run_until(5.0)
        assert seen == ["exact"]

    def test_step_returns_false_when_empty(self, scheduler):
        assert scheduler.step() is False

    def test_events_run_counter(self, scheduler):
        for t in (1.0, 2.0, 3.0):
            scheduler.call_at(t, lambda: None)
        scheduler.run()
        assert scheduler.events_run == 3

    def test_event_can_schedule_more_events(self, scheduler):
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                scheduler.call_after(1.0, chain, n + 1)

        scheduler.call_at(0.0, chain, 0)
        scheduler.run()
        assert seen == [0, 1, 2, 3]
        assert scheduler.now == 3.0

    def test_livelock_guard(self):
        scheduler = Scheduler()
        scheduler._max_events = 100

        def forever():
            scheduler.call_after(1.0, forever)

        scheduler.call_at(0.0, forever)
        with pytest.raises(RuntimeError, match="livelock"):
            scheduler.run()

    def test_livelock_guard_counts_only_fired_events(self):
        """Cancelled entries are skipped, not run — they must not eat
        into the event budget."""
        scheduler = Scheduler()
        scheduler._max_events = 10
        for t in range(50):
            scheduler.call_at(float(t), lambda: None).cancel()
        for t in range(10):
            scheduler.call_at(100.0 + t, lambda: None)
        assert scheduler.run() == 109.0  # exactly at budget: no raise
        assert scheduler.events_run == 10

    def test_livelock_guard_boundary(self):
        scheduler = Scheduler()
        scheduler._max_events = 5
        for t in range(6):
            scheduler.call_at(float(t), lambda: None)
        with pytest.raises(RuntimeError, match="exceeded 5 events"):
            scheduler.run()
