"""Unit tests for the five termination rules (pure decision tables).

The rules are pure functions over (writeset items, polled states), so
every branch of Fig. 5, Fig. 8, Skeen's rule [16], 3PC's rule [15] and
2PC's cooperative rule is pinned here directly against the paper's
text, using the Fig. 3 database (x at sites 1-4, y at 5-8, one vote
per copy, r=2, w=3).
"""

import pytest

from repro.protocols.base import Decision
from repro.protocols.qtp.quorums import TerminationRule1, TerminationRule2, votes_by_state
from repro.protocols.skeen import SkeenQuorumRule
from repro.protocols.states import TxnState
from repro.protocols.threepc import ThreePCTerminationRule
from repro.protocols.twopc import CooperativeTerminationRule
from repro.common.errors import ConfigurationError

Q, W, PA, PC, A, C = (
    TxnState.Q,
    TxnState.W,
    TxnState.PA,
    TxnState.PC,
    TxnState.A,
    TxnState.C,
)

ITEMS = ["x", "y"]


@pytest.fixture
def rule1(paper_catalog):
    return TerminationRule1(paper_catalog)


@pytest.fixture
def rule2(paper_catalog):
    return TerminationRule2(paper_catalog)


class TestVotesByState:
    def test_groups(self):
        groups = votes_by_state({1: W, 2: W, 3: PC})
        assert groups == {W: {1, 2}, PC: {3}}


class TestRule1:
    """Fig. 5, branch by branch."""

    def test_empty_states_block(self, rule1):
        assert rule1.evaluate(ITEMS, {}) is Decision.BLOCK

    def test_commit_on_any_commit_state(self, rule1):
        assert rule1.evaluate(ITEMS, {1: C, 2: W}) is Decision.COMMIT

    def test_commit_on_w_votes_in_pc_for_every_item(self, rule1):
        # w(x)=3 from {1,2,3}, w(y)=3 from {5,6,7} — all in PC
        states = {1: PC, 2: PC, 3: PC, 5: PC, 6: PC, 7: PC}
        assert rule1.evaluate(ITEMS, states) is Decision.COMMIT

    def test_no_commit_if_only_one_item_covered(self, rule1):
        # w(x) in PC but y has no PC votes: "every data item" fails
        states = {1: PC, 2: PC, 3: PC, 5: W, 6: W, 7: W}
        assert rule1.evaluate(ITEMS, states) is not Decision.COMMIT

    def test_abort_on_any_abort_state(self, rule1):
        assert rule1.evaluate(ITEMS, {1: A, 2: PC}) is Decision.ABORT

    def test_abort_on_any_initial_state(self, rule1):
        assert rule1.evaluate(ITEMS, {1: Q, 2: W}) is Decision.ABORT

    def test_abort_on_r_votes_in_pa_for_some_item(self, rule1):
        # r(x)=2 from PA sites {1,2}
        states = {1: PA, 2: PA, 3: W}
        assert rule1.evaluate(ITEMS, states) is Decision.ABORT

    def test_try_commit_needs_pc_witness(self, rule1):
        # votes suffice but nobody is in PC -> not try-commit
        states = {1: W, 2: W, 3: W, 5: W, 6: W, 7: W}
        assert rule1.evaluate(ITEMS, states) is Decision.TRY_ABORT

    def test_try_commit_on_w_votes_from_non_pa(self, rule1):
        states = {1: PC, 2: W, 3: W, 5: W, 6: W, 7: W}
        assert rule1.evaluate(ITEMS, states) is Decision.TRY_COMMIT

    def test_pa_votes_do_not_count_toward_commit(self, rule1):
        # site 3 in PA: non-PA x votes = {1,2} = 2 < w(x)=3
        states = {1: PC, 2: W, 3: PA, 5: W, 6: W, 7: W}
        result = rule1.evaluate(ITEMS, states)
        assert result is not Decision.TRY_COMMIT
        # ...but those W sites still allow an abort try via r(x) from non-PC
        assert result is Decision.ABORT or result is Decision.TRY_ABORT

    def test_try_abort_on_r_votes_from_non_pc(self, rule1):
        # G1 of Example 1: sites 2,3 hold r(x)=2 votes, both W
        assert rule1.evaluate(ITEMS, {2: W, 3: W}) is Decision.TRY_ABORT

    def test_g2_of_example1_blocks(self, rule1):
        # site4 (1 x-vote, not in PC) + site5 in PC: no branch fires
        assert rule1.evaluate(ITEMS, {4: W, 5: PC}) is Decision.BLOCK

    def test_commit_round_requires_w_every_item(self, rule1):
        assert rule1.commit_round_ok(ITEMS, {1, 2, 3, 5, 6, 7})
        assert not rule1.commit_round_ok(ITEMS, {1, 2, 3, 5, 6})
        assert not rule1.commit_round_ok(ITEMS, {1, 2, 5, 6, 7})

    def test_abort_round_requires_r_some_item(self, rule1):
        assert rule1.abort_round_ok(ITEMS, {2, 3})     # r(x)
        assert rule1.abort_round_ok(ITEMS, {6, 7})     # r(y)
        assert not rule1.abort_round_ok(ITEMS, {3, 6})  # 1 vote each


class TestRule2:
    """Fig. 8: thresholds swapped relative to Fig. 5."""

    def test_commit_on_r_votes_in_pc_for_some_item(self, rule2):
        states = {1: PC, 2: PC, 3: W}  # r(x)=2 in PC
        assert rule2.evaluate(ITEMS, states) is Decision.COMMIT

    def test_rule1_would_not_commit_there(self, rule1):
        states = {1: PC, 2: PC, 3: W}
        assert rule1.evaluate(ITEMS, states) is not Decision.COMMIT

    def test_abort_needs_w_votes_in_pa_for_every_item(self, rule2):
        # w(x) and w(y) both fully in PA
        states = {1: PA, 2: PA, 3: PA, 5: PA, 6: PA, 7: PA}
        assert rule2.evaluate(ITEMS, states) is Decision.ABORT

    def test_partial_pa_does_not_abort(self, rule2):
        # r(x) votes in PA is enough for rule 1 but not rule 2
        states = {1: PA, 2: PA, 3: W}
        result = rule2.evaluate(ITEMS, states)
        assert result is not Decision.ABORT

    def test_g1_of_example1_blocks_under_rule2(self, rule2):
        # sites 2,3 in W: try-abort needs w votes of EVERY item from
        # non-PC -> x has only 2 < 3 -> block (Example 1 under TP2)
        assert rule2.evaluate(ITEMS, {2: W, 3: W}) is Decision.BLOCK

    def test_try_commit_on_r_votes_from_non_pa(self, rule2):
        states = {1: PC, 2: W}  # r(x)=2 votes from non-PA, PC witness
        assert rule2.evaluate(ITEMS, states) is Decision.TRY_COMMIT

    def test_try_abort_needs_w_every_item(self, rule2):
        states = {1: W, 2: W, 3: W, 5: W, 6: W, 7: W}
        assert rule2.evaluate(ITEMS, states) is Decision.TRY_ABORT

    def test_commit_round_r_some(self, rule2):
        assert rule2.commit_round_ok(ITEMS, {1, 2})
        assert not rule2.commit_round_ok(ITEMS, {1, 5})

    def test_abort_round_w_every(self, rule2):
        assert rule2.abort_round_ok(ITEMS, {1, 2, 3, 5, 6, 7})
        assert not rule2.abort_round_ok(ITEMS, {1, 2, 3})

    def test_immediate_abort_on_q(self, rule2):
        assert rule2.evaluate(ITEMS, {1: Q, 2: PC}) is Decision.ABORT

    def test_immediate_commit_on_c(self, rule2):
        assert rule2.evaluate(ITEMS, {1: C}) is Decision.COMMIT


class TestSkeenRule:
    @pytest.fixture
    def rule(self):
        return SkeenQuorumRule({s: 1 for s in range(1, 9)}, vc=5, va=4)

    def test_quorum_constraint_enforced(self):
        with pytest.raises(ConfigurationError, match="must exceed"):
            SkeenQuorumRule({1: 1, 2: 1, 3: 1}, vc=2, va=1)

    def test_nonpositive_quorum_rejected(self):
        with pytest.raises(ConfigurationError):
            SkeenQuorumRule({1: 1, 2: 1}, vc=0, va=3)

    def test_unattainable_quorum_rejected(self):
        with pytest.raises(ConfigurationError):
            SkeenQuorumRule({1: 1, 2: 1}, vc=5, va=1)

    def test_example1_partitions_all_block(self, rule):
        assert rule.evaluate(ITEMS, {2: W, 3: W}) is Decision.BLOCK
        assert rule.evaluate(ITEMS, {4: W, 5: PC}) is Decision.BLOCK
        assert rule.evaluate(ITEMS, {6: W, 7: W, 8: W}) is Decision.BLOCK

    def test_commit_with_vc_in_pc(self, rule):
        states = {s: PC for s in range(1, 6)}  # 5 votes = Vc
        assert rule.evaluate(ITEMS, states) is Decision.COMMIT

    def test_try_abort_with_va_non_pc(self, rule):
        states = {s: W for s in range(1, 5)}  # 4 votes = Va
        assert rule.evaluate(ITEMS, states) is Decision.TRY_ABORT

    def test_try_commit_with_pc_and_vc_potential(self, rule):
        states = {1: PC, 2: W, 3: W, 4: W, 5: W}
        assert rule.evaluate(ITEMS, states) is Decision.TRY_COMMIT

    def test_weighted_site_votes(self):
        rule = SkeenQuorumRule({1: 3, 2: 1, 3: 1}, vc=4, va=2)
        # site 1 alone (3 votes) cannot commit, can try-abort (Va=2 needs 2)
        assert rule.evaluate(ITEMS, {1: W}) is Decision.TRY_ABORT

    def test_immediate_abort_paths(self, rule):
        assert rule.evaluate(ITEMS, {1: A, 2: PC}) is Decision.ABORT
        assert rule.evaluate(ITEMS, {1: Q, 2: W}) is Decision.ABORT
        states = {s: PA for s in range(1, 5)}  # Va votes in PA
        assert rule.evaluate(ITEMS, states) is Decision.ABORT

    def test_rounds_check_site_weights(self, rule):
        assert rule.commit_round_ok(ITEMS, {1, 2, 3, 4, 5})
        assert not rule.commit_round_ok(ITEMS, {1, 2, 3, 4})
        assert rule.abort_round_ok(ITEMS, {1, 2, 3, 4})
        assert not rule.abort_round_ok(ITEMS, {1, 2, 3})


class TestThreePCRule:
    @pytest.fixture
    def rule(self):
        return ThreePCTerminationRule()

    def test_commit_on_c(self, rule):
        assert rule.evaluate(ITEMS, {1: C, 2: W}) is Decision.COMMIT

    def test_try_commit_on_pc(self, rule):
        assert rule.evaluate(ITEMS, {1: PC, 2: W}) is Decision.TRY_COMMIT

    def test_abort_when_no_committable(self, rule):
        """The rule the paper's Example 2 exploits: all-W partitions
        abort while a PC partition commits."""
        assert rule.evaluate(ITEMS, {1: W, 2: W}) is Decision.ABORT
        assert rule.evaluate(ITEMS, {1: Q, 2: W}) is Decision.ABORT

    def test_abort_on_a(self, rule):
        assert rule.evaluate(ITEMS, {1: A, 2: W}) is Decision.ABORT

    def test_commit_round_never_blocks(self, rule):
        assert rule.commit_round_ok(ITEMS, set())

    def test_empty_blocks(self, rule):
        assert rule.evaluate(ITEMS, {}) is Decision.BLOCK


class TestCooperativeRule:
    @pytest.fixture
    def rule(self):
        return CooperativeTerminationRule()

    def test_adopts_commit(self, rule):
        assert rule.evaluate(ITEMS, {1: C, 2: W}) is Decision.COMMIT

    def test_adopts_abort(self, rule):
        assert rule.evaluate(ITEMS, {1: A, 2: W}) is Decision.ABORT

    def test_initial_state_aborts(self, rule):
        assert rule.evaluate(ITEMS, {1: Q, 2: W}) is Decision.ABORT

    def test_all_w_blocks(self, rule):
        """2PC's defining weakness (paper §1)."""
        assert rule.evaluate(ITEMS, {1: W, 2: W, 3: W}) is Decision.BLOCK

    def test_empty_blocks(self, rule):
        assert rule.evaluate(ITEMS, {}) is Decision.BLOCK
