"""Unit tests for the local state vocabulary and Fig. 6 transitions."""

import pytest

from repro.protocols.states import (
    COMMITTABLE,
    FORBIDDEN_TRANSITIONS,
    LEGAL_TRANSITIONS,
    TERMINAL,
    TxnState,
    can_transition,
    is_committable,
    is_terminal,
)


class TestClassification:
    def test_committable_states(self):
        assert COMMITTABLE == {TxnState.PC, TxnState.C}
        assert is_committable(TxnState.PC)
        assert not is_committable(TxnState.W)

    def test_terminal_states(self):
        assert TERMINAL == {TxnState.A, TxnState.C}
        assert is_terminal(TxnState.C)
        assert not is_terminal(TxnState.PC)

    def test_w_is_noncommittable(self):
        """A site in W knows only its own vote (paper §2)."""
        assert not is_committable(TxnState.W)


class TestTransitions:
    def test_self_loops_always_legal(self):
        for state in TxnState:
            assert can_transition(state, state)

    def test_no_pc_pa_edge(self):
        """The rule Example 3 depends on: no PC <-> PA transition."""
        assert not can_transition(TxnState.PC, TxnState.PA)
        assert not can_transition(TxnState.PA, TxnState.PC)
        assert (TxnState.PC, TxnState.PA) in FORBIDDEN_TRANSITIONS

    def test_terminal_states_absorbing(self):
        for terminal in (TxnState.A, TxnState.C):
            for dst in TxnState:
                if dst is not terminal:
                    assert not can_transition(terminal, dst)

    def test_normal_commit_path(self):
        assert can_transition(TxnState.Q, TxnState.W)
        assert can_transition(TxnState.W, TxnState.PC)
        assert can_transition(TxnState.PC, TxnState.C)

    def test_normal_abort_paths(self):
        assert can_transition(TxnState.Q, TxnState.A)
        assert can_transition(TxnState.W, TxnState.A)
        assert can_transition(TxnState.W, TxnState.PA)
        assert can_transition(TxnState.PA, TxnState.A)

    def test_quorum_commit_reaches_w_directly(self):
        """Fig. 9: the coordinator commits before all PC-ACKs, so a W
        site can legitimately receive COMMIT."""
        assert can_transition(TxnState.W, TxnState.C)

    def test_pc_can_be_aborted_by_command(self):
        assert can_transition(TxnState.PC, TxnState.A)

    def test_pa_can_be_committed_by_command(self):
        assert can_transition(TxnState.PA, TxnState.C)

    def test_q_cannot_reach_committable(self):
        """A site that never voted must never enter PC or C."""
        assert not can_transition(TxnState.Q, TxnState.PC)
        assert not can_transition(TxnState.Q, TxnState.C)

    def test_legal_and_forbidden_disjoint(self):
        assert not (LEGAL_TRANSITIONS & FORBIDDEN_TRANSITIONS)
