"""Unit tests for the WAL group-commit buffer and per-txn indexes.

Group-commit mode must be a pure performance change: every query
(``decision``, ``for_txn``, ``open_txns``, ``last_protocol_record``)
answers exactly as the legacy scanning implementation does, and the
irrevocability guard still fires.  Only the flush accounting differs —
a decision record closes a batch, so flushes <= forced.
"""

import random

import pytest

from repro.common.errors import StorageError
from repro.storage.wal import WriteAheadLog


def random_sequence(seed, n_txns=12, n_ops=120):
    """A WAL-legal force sequence: begin before anything, one decision."""
    rng = random.Random(seed)
    ops = []
    live = []
    decided = set()
    for i in range(n_txns):
        ops.append((f"T{i}", "begin"))
        live.append(f"T{i}")
    for _ in range(n_ops):
        txn = rng.choice(live)
        if txn in decided:
            kind = rng.choice(["apply"])  # post-decision applies are legal
        else:
            kind = rng.choice(["vote", "pc", "pa", "apply", "commit", "abort"])
            if kind in ("commit", "abort"):
                decided.add(txn)
        ops.append((txn, kind))
    return ops


def replay(ops, group_commit):
    wal = WriteAheadLog(7, group_commit=group_commit)
    for txn, kind in ops:
        wal.force(txn, kind)
    return wal


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_queries_match_legacy(self, seed):
        ops = random_sequence(seed)
        legacy = replay(ops, group_commit=False)
        grouped = replay(ops, group_commit=True)
        assert [str(r) for r in legacy] == [str(r) for r in grouped]
        assert legacy.open_txns() == grouped.open_txns()
        txns = {txn for txn, _ in ops}
        for txn in sorted(txns) + ["T-missing"]:
            assert legacy.decision(txn) == grouped.decision(txn)
            assert legacy.for_txn(txn) == grouped.for_txn(txn)
            assert legacy.last_protocol_record(txn) == grouped.last_protocol_record(txn)

    def test_conflicting_decision_rejected_in_both_modes(self):
        for mode in (False, True):
            wal = WriteAheadLog(1, group_commit=mode)
            wal.force("T1", "begin")
            wal.force("T1", "commit")
            with pytest.raises(StorageError, match="already logged commit"):
                wal.force("T1", "abort")
            wal.force("T1", "commit")  # same decision again is legal

    def test_unknown_kind_rejected(self):
        wal = WriteAheadLog(1)
        with pytest.raises(StorageError, match="unknown log record kind"):
            wal.force("T1", "checkpoint")


class TestGroupCommitAccounting:
    def test_protocol_answer_records_close_the_batch(self):
        """vote/pc/pa/commit/abort must be durable before the site
        replies, so each closes the open batch; begin and apply ride."""
        wal = WriteAheadLog(1)
        wal.force("T1", "begin")
        assert wal.flushes == 0  # begin rides the batch
        wal.force("T1", "vote", vote="yes")
        assert wal.flushes == 1  # vote answers the coordinator: flush
        wal.force("T1", "pc")
        assert wal.flushes == 2  # ack-gating record: flush
        wal.force("T1", "apply", item="x", value=1, version=1)
        wal.force("T1", "apply", item="y", value=2, version=1)
        assert wal.flushes == 2  # applies ride
        wal.force("T1", "commit")
        assert wal.flushes == 3  # decision closes the applies' batch
        assert wal.forced == 6

    def test_explicit_flush_and_noop(self):
        wal = WriteAheadLog(1)
        assert wal.flush() == 0
        assert wal.flushes == 0
        wal.force("T1", "begin")
        assert wal.flush() == 1
        assert wal.flushes == 1
        assert wal.flush() == 0
        assert wal.flushes == 1

    def test_legacy_mode_charges_one_flush_per_force(self):
        wal = WriteAheadLog(1, group_commit=False)
        wal.force("T1", "begin")
        wal.force("T1", "vote")
        wal.force("T1", "commit")
        assert wal.flushes == wal.forced == 3

    def test_grouped_flushes_never_exceed_forced(self):
        ops = random_sequence(3)
        grouped = replay(ops, group_commit=True)
        grouped.flush()
        assert 0 < grouped.flushes <= grouped.forced
        # with multi-record transactions, batching must actually batch
        assert grouped.flushes < grouped.forced
