"""QuantileDigest edge semantics and the mergeable digest state.

The quantile clamp must test ``is not None``, never truthiness: an
observed extreme of exactly 0.0 is a real bound (latency digests start
at 0), and the empty digest returns a defined sentinel instead of
raising mid-sweep.  The state/absorb surface ships digests inside
result rows; :class:`DigestMergeAcc` folds those states with the exact
merge law every accumulator promises.
"""

import pytest

from repro.engine.aggregate import DigestMergeAcc, QuantileDigest


class TestQuantileEdges:
    def test_empty_digest_returns_sentinel(self):
        digest = QuantileDigest(0.0, 10.0, 8)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == 0.0

    def test_all_values_at_lower_bound_clamp_to_zero(self):
        # the regression the is-not-None clamp fixes: min == 0.0 is
        # falsy, but it is still the observed maximum — interpolation
        # inside the first bin must not leak past it
        digest = QuantileDigest(0.0, 10.0, 4)
        for _ in range(5):
            digest.add(0.0)
        assert digest.min == 0.0 and digest.max == 0.0
        for q in (0.01, 0.5, 0.999):
            assert digest.quantile(q) == 0.0

    def test_saturated_single_bin_reports_observed_extremes(self):
        digest = QuantileDigest(0.0, 100.0, 2)  # 50-wide bins
        digest.add(3.0)
        digest.add(4.0)
        # everything landed in bin 0; estimates clamp to [3, 4], not to
        # interpolated points across the 50-wide bin
        assert 3.0 <= digest.quantile(0.5) <= 4.0
        assert digest.quantile(0.999) <= 4.0

    def test_out_of_range_values_clamp_into_edge_bins(self):
        digest = QuantileDigest(0.0, 10.0, 4)
        digest.add(-5.0)
        digest.add(25.0)
        assert sum(digest.counts) == 2
        assert digest.counts[0] == 1 and digest.counts[-1] == 1
        assert digest.min == -5.0 and digest.max == 25.0
        # estimates stay inside the exact observed range (the clamp
        # narrows interpolated points; it never extends past [lo, hi))
        for q in (0.001, 0.5, 0.999):
            assert digest.min <= digest.quantile(q) <= digest.max

    def test_quantile_monotone_in_q(self):
        digest = QuantileDigest(0.0, 60.0)
        for value in (0.5, 1.0, 2.0, 4.5, 9.0, 30.0, 59.0):
            digest.add(value)
        estimates = [digest.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 0.999)]
        assert estimates == sorted(estimates)
        assert estimates[-1] <= 59.0


class TestDigestState:
    def test_state_round_trip(self):
        digest = QuantileDigest(0.0, 10.0, 8)
        for value in (0.0, 1.5, 9.9, 3.2):
            digest.add(value)
        rebuilt = QuantileDigest.from_state(digest.state())
        assert rebuilt.state() == digest.state()
        assert rebuilt.quantile(0.99) == digest.quantile(0.99)

    def test_empty_state_round_trip(self):
        digest = QuantileDigest(0.0, 10.0, 8)
        rebuilt = QuantileDigest.from_state(digest.state())
        assert rebuilt.n == 0 and rebuilt.min is None and rebuilt.max is None

    def test_from_state_rejects_wrong_bin_count(self):
        state = QuantileDigest(0.0, 10.0, 8).state()
        state["counts"] = [0] * 4
        with pytest.raises(ValueError):
            QuantileDigest.from_state(state)

    def test_absorb_equals_direct_fold(self):
        left, right = QuantileDigest(0.0, 10.0), QuantileDigest(0.0, 10.0)
        serial = QuantileDigest(0.0, 10.0)
        for i, value in enumerate((1.0, 2.0, 3.0, 7.0, 8.5, 0.0)):
            (left if i % 2 else right).add(value)
            serial.add(value)
        combined = QuantileDigest(0.0, 10.0)
        combined.absorb(left.state())
        combined.absorb(right.state())
        assert combined.state() == serial.state()

    def test_merge_rejects_mismatched_layout(self):
        with pytest.raises(ValueError):
            QuantileDigest(0.0, 10.0, 8).merge(QuantileDigest(0.0, 10.0, 16))


class TestDigestMergeAcc:
    def _state(self, values, lo=0.0, hi=10.0, bins=8):
        digest = QuantileDigest(lo, hi, bins)
        for value in values:
            digest.add(value)
        return digest.state()

    def test_summary_carries_p999(self):
        acc = DigestMergeAcc(0.0, 10.0, 8)
        acc.add(self._state([1.0, 2.0, 9.0]))
        summary = acc.summary()
        assert summary["kind"] == "digest_merge"
        assert summary["n"] == 3
        assert set(summary) == {"kind", "n", "min", "max", "p50", "p99", "p999"}

    def test_merge_order_invariant(self):
        states = [self._state([float(i), float(i) * 1.5]) for i in range(6)]
        serial = DigestMergeAcc(0.0, 10.0, 8)
        for state in states:
            serial.add(state)
        left, right = DigestMergeAcc(0.0, 10.0, 8), DigestMergeAcc(0.0, 10.0, 8)
        for i, state in enumerate(states):
            (left if i < 3 else right).add(state)
        left.merge(right)
        assert left.summary() == serial.summary()

    def test_fresh_preserves_layout(self):
        acc = DigestMergeAcc(0.0, 60.0, 32)
        acc.add(self._state([5.0], lo=0.0, hi=60.0, bins=32))
        clone = acc.fresh()
        assert clone.summary()["n"] == 0
        assert (clone.digest.lo, clone.digest.hi, clone.digest.bins) == (0.0, 60.0, 32)
