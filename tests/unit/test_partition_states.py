"""Unit tests for the Fig. 4 partition-state theory."""

import pytest

from repro.analysis.partition_states import (
    PartitionState,
    classify_partition,
    concurrency_sets,
    format_concurrency_table,
    impossibility_argument,
    reachable_global_states,
)
from repro.protocols.states import TxnState

Q, W, PA, PC, A, C = (
    TxnState.Q,
    TxnState.W,
    TxnState.PA,
    TxnState.PC,
    TxnState.A,
    TxnState.C,
)


class TestClassification:
    def test_ps1_initial_no_abort(self):
        assert classify_partition([Q, W]) is PartitionState.PS1
        assert classify_partition([Q]) is PartitionState.PS1

    def test_ps2_all_wait(self):
        assert classify_partition([W, W, W]) is PartitionState.PS2

    def test_ps3_any_abort(self):
        assert classify_partition([A, W]) is PartitionState.PS3
        assert classify_partition([A, Q]) is PartitionState.PS3  # A beats Q

    def test_ps4_mixed_pc_w(self):
        assert classify_partition([PC, W]) is PartitionState.PS4

    def test_ps5_all_pc(self):
        assert classify_partition([PC, PC]) is PartitionState.PS5

    def test_ps6_any_commit(self):
        assert classify_partition([C, W]) is PartitionState.PS6
        assert classify_partition([C, PC]) is PartitionState.PS6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_partition([])

    def test_pa_out_of_alphabet(self):
        with pytest.raises(ValueError, match="PA"):
            classify_partition([PA, W])

    def test_exclusive_and_exhaustive(self):
        """Every multiset over the 3PC alphabet classifies to exactly one PS."""
        import itertools

        alphabet = [Q, W, PC, A, C]
        for combo in itertools.product(alphabet, repeat=3):
            ps = classify_partition(list(combo))
            assert isinstance(ps, PartitionState)


class TestReachableGlobalStates:
    def test_no_q_with_pc(self):
        """PREPARE requires a unanimous yes, so Q excludes PC/C."""
        for vector in reachable_global_states(3):
            present = set(vector)
            if Q in present:
                assert PC not in present and C not in present

    def test_no_a_with_pc_or_c(self):
        for vector in reachable_global_states(3):
            present = set(vector)
            if A in present:
                assert PC not in present and C not in present

    def test_w_c_mix_reachable(self):
        """A lost PREPARE leaves W while others commit."""
        assert (W, C) in set(reachable_global_states(2)) or (C, W) in set(
            reachable_global_states(2)
        )

    def test_all_w_reachable(self):
        assert (W, W, W) in set(reachable_global_states(3))


class TestConcurrencySets:
    @pytest.fixture(scope="class")
    def sets(self):
        return concurrency_sets(5)

    def test_paper_claims(self, sets):
        """The claims the §2 argument cites, against the derived table."""
        assert PartitionState.PS3 in sets[PartitionState.PS1]
        assert PartitionState.PS3 in sets[PartitionState.PS2]
        assert PartitionState.PS6 in sets[PartitionState.PS5]
        assert PartitionState.PS2 in sets[PartitionState.PS5]
        assert PartitionState.PS5 in sets[PartitionState.PS2]
        assert PartitionState.PS2 in sets[PartitionState.PS4]
        assert PartitionState.PS5 in sets[PartitionState.PS4]

    def test_voting_era_isolated_from_prepared_era(self, sets):
        """PS1/PS3 (voting era evidence) never coexist with PS5/PS6."""
        for voting in (PartitionState.PS1, PartitionState.PS3):
            assert PartitionState.PS5 not in sets[voting]
            assert PartitionState.PS6 not in sets[voting]

    def test_symmetry(self, sets):
        for ps, others in sets.items():
            for other in others:
                assert ps in sets[other]

    def test_stable_at_larger_n(self, sets):
        assert concurrency_sets(6) == sets

    def test_table_renders(self, sets):
        table = format_concurrency_table(sets)
        assert "PS1" in table and "C(PS)" in table


class TestImpossibility:
    def test_argument_verifies(self):
        steps = impossibility_argument()
        assert len(steps) == 5
        assert "PS2" in steps[0].claim

    def test_argument_uses_given_sets(self):
        sets = concurrency_sets(5)
        steps = impossibility_argument(sets)
        assert steps  # all assertions inside passed
