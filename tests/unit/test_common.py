"""Unit tests for the common primitives (ids, errors)."""

import pytest

from repro.common.errors import (
    QuorumUnreachableError,
    ReproError,
    TransactionAborted,
    TransactionBlocked,
)
from repro.common.ids import make_txn_id, reset_txn_counter


class TestIds:
    def test_embeds_origin_and_counter(self):
        assert make_txn_id(3, 17) == "T3.17"

    def test_global_counter_monotone(self):
        reset_txn_counter()
        first = make_txn_id(1)
        second = make_txn_id(1)
        assert first == "T1.1" and second == "T1.2"

    def test_different_origins_never_collide(self):
        reset_txn_counter()
        assert make_txn_id(1, 5) != make_txn_id(2, 5)


class TestErrors:
    def test_hierarchy(self):
        for exc_type in (TransactionAborted, TransactionBlocked, QuorumUnreachableError):
            assert issubclass(exc_type, ReproError)

    def test_transaction_aborted_carries_context(self):
        exc = TransactionAborted("T1", "lock conflict")
        assert exc.txn_id == "T1"
        assert "lock conflict" in str(exc)

    def test_transaction_aborted_default_reason(self):
        assert "unspecified" in str(TransactionAborted("T1"))

    def test_quorum_error_carries_accounting(self):
        exc = QuorumUnreachableError("x", "read", gathered=1, needed=2)
        assert (exc.item, exc.kind, exc.gathered, exc.needed) == ("x", "read", 1, 2)
        assert "1 of 2" in str(exc)

    def test_blocked_message(self):
        assert "blocked" in str(TransactionBlocked("T9"))

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise QuorumUnreachableError("x", "write", 0, 3)
