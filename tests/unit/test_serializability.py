"""Unit tests for the conflict-graph serializability checker."""

from repro.concurrency.serializability import CommittedTxn, ConflictGraph


class TestSerializable:
    def test_disjoint_txns_serializable(self):
        history = [
            CommittedTxn("T1", writes={"x": 1}),
            CommittedTxn("T2", writes={"y": 1}),
        ]
        graph = ConflictGraph(history)
        assert graph.is_serializable()
        assert graph.cycle() is None

    def test_ww_chain_is_ordered(self):
        history = [
            CommittedTxn("T2", writes={"x": 2}),
            CommittedTxn("T1", writes={"x": 1}),
        ]
        graph = ConflictGraph(history)
        assert graph.is_serializable()
        order = graph.serial_order()
        assert order.index("T1") < order.index("T2")

    def test_wr_edge_orders_reader_after_writer(self):
        history = [
            CommittedTxn("T1", writes={"x": 1}),
            CommittedTxn("T2", reads={"x": 1}, writes={"y": 1}),
        ]
        order = ConflictGraph(history).serial_order()
        assert order.index("T1") < order.index("T2")

    def test_rw_edge_orders_reader_before_later_writer(self):
        history = [
            CommittedTxn("T1", reads={"x": 0}),
            CommittedTxn("T2", writes={"x": 1}),
        ]
        order = ConflictGraph(history).serial_order()
        assert order.index("T1") < order.index("T2")

    def test_empty_history(self):
        assert ConflictGraph([]).is_serializable()


class TestNonSerializable:
    def test_write_skew_style_cycle(self):
        # T1 reads x before T2 writes it; T2 reads y before T1 writes it.
        history = [
            CommittedTxn("T1", reads={"x": 0}, writes={"y": 1}),
            CommittedTxn("T2", reads={"y": 0}, writes={"x": 1}),
        ]
        graph = ConflictGraph(history)
        assert not graph.is_serializable()
        assert set(graph.cycle()) == {"T1", "T2"}

    def test_lost_update_cycle(self):
        # both read version 0 of x, both write x -> rw + ww cycle
        history = [
            CommittedTxn("T1", reads={"x": 0}, writes={"x": 1}),
            CommittedTxn("T2", reads={"x": 0}, writes={"x": 2}),
        ]
        assert not ConflictGraph(history).is_serializable()
