"""E4 — Example 4: termination protocol 1 restores data availability.

Same Fig. 3 failure as Example 1, but under the paper's protocol:
TR aborts in G1 and G3; x becomes readable in G1, y updatable in G3;
G2 stays blocked (no quorum either way) — strictly better than
Example 1's everything-blocked outcome.
"""

from repro.experiments.examples import run_example1, run_example4


def test_example4_availability_restored(benchmark):
    verdict = benchmark(run_example4)
    print("\n" + verdict.availability_table)
    assert verdict.matches_paper
    assert verdict.g1_aborted and verdict.g3_aborted and verdict.g2_blocked
    assert verdict.x_readable_in_g1
    assert verdict.y_writable_in_g3


def test_example4_beats_example1():
    """The head-to-head the paper's §3.1.1 closes with."""
    skeen = run_example1()
    qtp = run_example4()
    assert not skeen.x_readable_in_g1 and qtp.x_readable_in_g1
    assert not skeen.y_writable_in_g3 and qtp.y_writable_in_g3
