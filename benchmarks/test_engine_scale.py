"""E18 / E21 — the engine-unlocked large-scale scenarios, measured.

Both regenerate their tables through :mod:`repro.engine` and assert the
shape the paper's story predicts at scale: safety is free (no protocol
family violates atomicity), availability after storms is partial and
protocol-dependent, and heavy multi-transaction traffic stays one-copy
serializable end to end.
"""

from repro.experiments.sweeps import wan_partition_storm
from repro.experiments.workload_study import heavy_traffic_study


def test_wan_partition_storm(benchmark):
    rows = benchmark.pedantic(
        wan_partition_storm, kwargs={"runs": 8}, rounds=1, iterations=1
    )
    print()
    for row in rows:
        print(row.format_row())
    by_name = {row.protocol: row for row in rows}

    # safety at installation scale: no family violates atomicity
    for row in rows:
        assert row.violation_runs == 0

    # the storm is not inert: partitioned availability stays partial
    for row in rows:
        assert 0.0 < row.readable_fraction < 1.0

    # qtp2's stricter commit condition blocks at least as often as qtp1
    assert by_name["qtp2"].blocked_runs >= by_name["qtp1"].blocked_runs


def test_heavy_traffic_study(benchmark):
    rows = benchmark.pedantic(
        heavy_traffic_study,
        kwargs={"runs": 2, "n_txns": 80},
        rounds=1,
        iterations=1,
    )
    print()
    for row in rows:
        print(row.format_row())
    for row in rows:
        assert row.serializable  # 1SR under real contention
        assert row.committed > 0  # the system made progress
        assert row.blocked == 0  # nothing in doubt after the final heal
        assert row.client_aborted + row.protocol_aborted > 0  # contention was real
        total = row.committed + row.client_aborted + row.protocol_aborted + row.blocked
        assert total == row.submitted
