"""E18 — Fig. 6's transition diagram, audited against real runs.

Runs a corpus of randomized fault schedules under both of the paper's
protocols, extracts every local state transition that actually
happened, and checks the union against the declared Fig. 6 relation:
nothing illegal, and all the diagram's edges exercised (including the
edges that only exist because of quorum termination — W->PA — and
early commit — W->C).
"""

from repro.analysis.transitions import audit_transitions
from repro.db.cluster import Cluster
from repro.protocols.states import TxnState
from repro.sim.rng import RngRegistry
from repro.workload.generators import random_catalog, random_fault_plan, random_update


def run_corpus(protocol: str, runs: int = 30, base_seed: int = 0):
    tracers = []
    for i in range(runs):
        seed = base_seed + i
        rng = RngRegistry(seed).stream("fig6")
        catalog = random_catalog(rng, n_sites=7, n_items=3, replication=3)
        origin, writes = random_update(rng, catalog, max_items=2)
        cluster = Cluster(catalog, protocol=protocol, seed=seed)
        cluster.update(origin, writes)
        plan = random_fault_plan(
            rng,
            cluster.network.sites,
            origin,
            crash_coordinator=rng.random() < 0.7,
            heal_at=rng.uniform(30.0, 50.0),
        )
        cluster.arm_failures(plan)
        cluster.run()
        tracers.append(cluster.tracer)
    return tracers


def test_fig6_audit(benchmark):
    tracers = benchmark.pedantic(run_corpus, args=("qtp1",), rounds=1, iterations=1)
    tracers += run_corpus("qtp2", runs=30, base_seed=500)
    audit = audit_transitions(tracers)
    print("\n" + audit.format_table())
    assert audit.conforms
    # the diagram's edges are actually exercised by the corpus
    assert audit.covers(
        (TxnState.Q, TxnState.W),     # vote yes
        (TxnState.W, TxnState.PC),    # joins a commit quorum
        (TxnState.W, TxnState.PA),    # joins an abort quorum
        (TxnState.W, TxnState.A),     # abort command in wait state
        (TxnState.W, TxnState.C),     # early COMMIT reaches a W site
        (TxnState.PC, TxnState.C),
        (TxnState.PA, TxnState.A),
    )
    # and the Example-3 killers never appear
    assert (TxnState.PC, TxnState.PA) not in audit.observed
    assert (TxnState.PA, TxnState.PC) not in audit.observed
