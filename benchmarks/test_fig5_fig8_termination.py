"""E6 + E9 — Fig. 5 / Fig. 8: the termination protocols' decision
matrices, plus engine-level runs of each decision branch.

The matrix evaluates rule 1, rule 2 and Skeen's rule over
representative partition states of the Fig. 3 database; the paper's
availability argument appears as the BLOCK (Skeen, rule 2) vs
TRY_ABORT (rule 1) entries on the Example-1 partitions.
"""

import pytest

from repro.experiments.figures import run_decision_matrix
from repro.workload.scenarios import run_example1_scenario


def test_decision_matrix(benchmark):
    matrix = benchmark(run_decision_matrix)
    print("\n" + matrix.format())
    rows = dict(matrix.rows)
    # Example 1's G1 row: rule 1 frees it, rule 2 and Skeen block
    assert rows["G1 of Example 1: sites 2,3 in W"] == ["try-abort", "block", "block"]
    # G2 blocks under all three (the paper: TR remains blocked in G2)
    assert rows["G2 of Example 1: 4 in W, 5 in PC"] == ["block", "block", "block"]
    # one committed participant forces commit everywhere (Rule 1 of §2)
    assert rows["one participant committed"] == ["commit"] * 3
    # an initial-state participant forces abort everywhere
    assert rows["one participant still initial"] == ["abort"] * 3


@pytest.mark.parametrize("protocol,expected_g1", [("qtp1", "A"), ("qtp2", "W")])
def test_termination_engine_runs_fig3(benchmark, protocol, expected_g1):
    """Engine-level: TP1 aborts G1; TP2 (stricter abort) leaves it
    blocked in W — the Fig. 5 vs Fig. 8 trade-off, live."""
    result = benchmark.pedantic(
        run_example1_scenario, args=(protocol,), rounds=3, iterations=1
    )
    states = result.states()
    assert states[2] == expected_g1
    assert result.report.atomic
