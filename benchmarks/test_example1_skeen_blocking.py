"""E3 — Example 1 / Fig. 3: Skeen's protocol [16] blocks every partition.

The paper: with Vc=5, Va=4 over 8 one-vote sites and the partitioning
G1={1,2,3}, G2={4,5}, G3={6,7,8}, no partition reaches either quorum;
TR blocks everywhere; x and y are inaccessible everywhere *even
though* G1 holds a read quorum of x and G3 a write quorum of y.
"""

from repro.experiments.examples import run_example1


def test_example1_all_partitions_block(benchmark):
    verdict = benchmark(run_example1)
    print("\n" + verdict.availability_table)
    assert verdict.matches_paper
    assert verdict.outcome == "blocked"
    assert verdict.blocked_in_all_partitions
    # the paper's punchline: votes are there, access is not
    assert not verdict.x_readable_in_g1
    assert not verdict.y_writable_in_g3
