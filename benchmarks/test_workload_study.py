"""E17 (extension) — a live client workload across a partition episode.

Read-modify-write transactions arrive on the virtual clock while the
network splits and heals.  Asserts the full correctness story: every
committed history is one-copy serializable, the safe protocols leave
nothing blocked after the heal, and clients make progress.
"""

from repro.experiments.workload_study import workload_study


def test_workload_study(benchmark):
    rows = benchmark.pedantic(
        workload_study, kwargs={"runs": 4, "n_txns": 20}, rounds=1, iterations=1
    )
    print()
    for row in rows:
        print(row.format_row())
    for row in rows:
        assert row.serializable  # 1SR in every run, every protocol
        assert row.committed > 0  # clients made progress
        assert row.blocked == 0  # nothing left in doubt after the heal
        total = row.committed + row.client_aborted + row.protocol_aborted + row.blocked
        assert total == row.submitted
