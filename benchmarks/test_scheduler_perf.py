"""Scheduler hot-path performance.

Every simulated message crosses the event queue, so the randomized
studies stand or fall with it.  Two claims are pinned here:

* **throughput** — heap entries are plain ``(time, seq, handle)``
  tuples compared in C; a schedule/cancel/drain cycle over 20k events
  is benchmarked so regressions (e.g. reintroducing rich-comparison
  heap records) show up as a step change in the trend.
* **O(1) ``pending``** — the live-entry counter replaces an O(n) queue
  scan.  Probing ``pending`` 20k times against a 50k-entry queue is
  ~1e9 comparisons under the old scan — minutes of work — and must
  finish in well under a second now.
"""

import time

import pytest

from repro.sim.scheduler import Scheduler

N_EVENTS = 20_000


def schedule_cancel_drain(n: int = N_EVENTS) -> int:
    """The hot-path mix: push n events (hash-scattered times), cancel a
    third of them, drain the rest."""
    sched = Scheduler()
    handles = [
        sched.call_at(float((i * 2654435761) % 997), lambda: None) for i in range(n)
    ]
    for handle in handles[::3]:
        handle.cancel()
    sched.run()
    return sched.events_run


@pytest.mark.perf
def test_event_throughput(benchmark):
    events_run = benchmark.pedantic(schedule_cancel_drain, rounds=3, iterations=1)
    assert events_run == N_EVENTS - len(range(0, N_EVENTS, 3))


@pytest.mark.perf
def test_pending_is_o1_under_load():
    sched = Scheduler()
    for i in range(50_000):
        sched.call_at(float(i), lambda: None)
    t0 = time.perf_counter()
    for _ in range(20_000):
        assert sched.pending == 50_000
    elapsed = time.perf_counter() - t0
    # the pre-optimization O(n) scan needs ~1e9 handle checks here;
    # even a 10x-slow machine clears the counter version in < 1s.
    assert elapsed < 1.0, f"pending looks O(n) again: {elapsed:.2f}s for 20k probes"


@pytest.mark.perf
def test_cancellation_is_o1(benchmark):
    """Cancelling must never touch the heap (lazy skip at pop time)."""

    def build_and_cancel():
        sched = Scheduler()
        handles = [sched.call_at(float(i), lambda: None) for i in range(N_EVENTS)]
        for handle in handles:
            handle.cancel()
        return sched.pending

    assert benchmark.pedantic(build_and_cancel, rounds=3, iterations=1) == 0
