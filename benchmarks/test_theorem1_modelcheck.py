"""E14 — Theorem 1, model-checked over random fault schedules.

"The proposed termination protocol will terminate transactions
consistently under concurrent site failures, lost messages and network
partitioning."  Here: hundreds of randomized schedules per protocol,
zero tolerated violations — with 3PC as the positive control showing
the detector can fire.
"""

import pytest

from repro.experiments.sweeps import modelcheck

RUNS = 60


@pytest.mark.parametrize("protocol", ["qtp1", "qtp2", "skq", "2pc"])
def test_theorem1_holds(benchmark, protocol):
    result = benchmark.pedantic(
        modelcheck,
        kwargs={"protocol": protocol, "runs": RUNS, "base_seed": 1000},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_row())
    assert result.theorem_holds, f"violating seeds: {result.seeds_with_violation}"


def test_detector_positive_control(benchmark):
    result = benchmark.pedantic(
        modelcheck,
        kwargs={"protocol": "3pc", "runs": RUNS, "base_seed": 1000},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_row())
    assert not result.theorem_holds
