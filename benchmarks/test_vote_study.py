"""E19 (extension) — vote assignment policies under the paper's protocol.

Gifford vote assignments shape what the termination protocol can save:
read-one maximizes post-failure readability but can essentially never
commit or write after a fault (w = v); uniform majority balances both;
weighting a primary concentrates the item's fate on one site — and in
these scenarios the crashed coordinator *is* that site, so nearly
everything is lost with it.
"""

from repro.experiments.vote_study import vote_assignment_study


def test_vote_assignment_study(benchmark):
    rows = benchmark.pedantic(
        vote_assignment_study, kwargs={"runs": 30}, rounds=1, iterations=1
    )
    print()
    for row in rows:
        print(row.format_row())
    by_name = {row.policy: row for row in rows}

    # read-one reads best, writes worst
    assert (
        by_name["read-one"].readable_fraction
        > by_name["uniform-majority"].readable_fraction
    )
    assert by_name["read-one"].writable_fraction == 0.0
    assert by_name["read-one"].committed_runs <= by_name["uniform-majority"].committed_runs

    # a coordinator-located primary drags the item down with it
    assert (
        by_name["primary-weighted"].readable_fraction
        < by_name["uniform-majority"].readable_fraction
    )

    # safety is policy-independent
    for row in rows:
        assert row.violations == 0
