"""E7 — Example 3 / Fig. 7: two coordinators and the PC/PA ignore rules.

Ablation D2: the same healed-partition, lost-messages race is run with
the ignore rules enforced (paper's protocol — consistent) and relaxed
(the counterexample — G2 commits while G1 aborts).
"""

from repro.experiments.examples import run_example3


def test_example3_broken_variant_inconsistent(benchmark):
    verdict = benchmark.pedantic(run_example3, args=(False,), rounds=3, iterations=1)
    print(f"\nrelaxed rules: outcome={verdict.outcome} atomic={verdict.atomic}")
    assert verdict.matches_paper
    assert not verdict.atomic


def test_example3_enforced_variant_consistent(benchmark):
    verdict = benchmark.pedantic(run_example3, args=(True,), rounds=3, iterations=1)
    print(
        f"\nenforced rules: outcome={verdict.outcome} atomic={verdict.atomic} "
        f"(prepare messages ignored: {verdict.ignored_messages})"
    )
    assert verdict.matches_paper
    assert verdict.atomic
    assert verdict.ignored_messages >= 1
