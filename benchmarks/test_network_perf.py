"""Network fan-out hot-path performance.

The randomized studies push 10^5+ messages per run, every one of which
used to re-evaluate connectivity at send time *and* delivery time.
Two claims are pinned here:

* the partition-epoch reachable-peer cache never changes behaviour —
  the legacy and cached paths agree on every counter under a storm with
  partitions, crashes and heals (also property-tested in
  ``tests/property/test_prop_bench.py``);
* the cached path is not slower than the legacy path it replaced.  The
  committed ``BENCH_net_deliver_fanout.json`` baseline records the
  actual speedup (>= 1.5x on this mix); here the assertion is
  deliberately loose so a loaded CI machine cannot flake the suite.
"""

import time

import pytest

from repro.bench.cases import net_fanout_trial


@pytest.mark.perf
def test_fanout_storm_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: net_fanout_trial(0, cached=True, n_sites=18, rounds=6),
        rounds=3,
        iterations=1,
    )
    counters = result["counters"]
    assert counters["delivered"] > 0 and counters["dropped"] > 0


@pytest.mark.perf
def test_cached_fanout_not_slower_than_legacy():
    # best-of-3 each way; the cache should win clearly (~1.5x), but the
    # gate only demands it never *loses* badly, to stay noise-proof.
    legacy = []
    cached = []
    for _ in range(3):
        t0 = time.perf_counter()
        base = net_fanout_trial(1, cached=False, n_sites=18, rounds=6)
        legacy.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fast = net_fanout_trial(1, cached=True, n_sites=18, rounds=6)
        cached.append(time.perf_counter() - t0)
        assert base["counters"] == fast["counters"]
    assert min(cached) < min(legacy) * 1.25, (
        f"epoch cache lost its edge: cached {min(cached):.3f}s "
        f"vs legacy {min(legacy):.3f}s"
    )
