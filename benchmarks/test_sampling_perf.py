"""Zipf sampler and fan-out flyweight hot-path performance.

PR 5's allocation/sampling pass pinned two committed baselines:

* ``BENCH_zipf_sampling`` — Walker alias table vs the O(n) cumulative
  scan at a ~10^5-item catalog (the scale the workload subsystem was
  built for; the scan is what made those catalogs sampling-bound);
* ``BENCH_net_fanout_flyweight`` — shared-envelope stamps vs
  per-destination ``Message`` construction on the send side of
  broadcast storms.

Here the assertions are deliberately loose (the optimized arm must
never *lose*) so a loaded CI machine cannot flake the suite; the
committed baselines record the actual speedups.  The large-catalog
sweep is ``slow``-marked — the weekly scheduled suite runs it at full
10^5-item scale.
"""

import time

import pytest

from repro.bench.cases import net_fanout_flyweight_trial, zipf_sampling_trial


@pytest.mark.perf
def test_alias_sampler_not_slower_than_scan():
    sizes = {"n_items": 5_000, "draws": 120, "fp_draws": 20}
    scan = []
    alias = []
    for _ in range(3):
        t0 = time.perf_counter()
        zipf_sampling_trial(2, alias=False, **sizes)
        scan.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        zipf_sampling_trial(2, alias=True, **sizes)
        alias.append(time.perf_counter() - t0)
    assert min(alias) < min(scan) * 1.25, (
        f"alias sampler lost its edge: alias {min(alias):.3f}s "
        f"vs scan {min(scan):.3f}s"
    )


@pytest.mark.perf
def test_flyweight_fanout_not_slower_than_messages():
    legacy = []
    stamped = []
    for _ in range(3):
        base = net_fanout_flyweight_trial(1, flyweight=False, n_sites=16, rounds=10)
        fast = net_fanout_flyweight_trial(1, flyweight=True, n_sites=16, rounds=10)
        assert base["counters"] == fast["counters"]
        legacy.append(base["timing"]["wall_s"])
        stamped.append(fast["timing"]["wall_s"])
    assert min(stamped) < min(legacy) * 1.15, (
        f"flyweight lost its edge: stamps {min(stamped):.3f}s "
        f"vs messages {min(legacy):.3f}s"
    )


@pytest.mark.slow
@pytest.mark.perf
def test_alias_sampler_wins_big_at_large_catalogs():
    """The weekly deep run: full 10^5-item scale, hard 1.5x bar.

    At this catalog size the O(n) scan pays ~10^5 additions per draw
    (plus two full list copies per footprint), so the alias table must
    win by a wide margin even on a noisy machine.
    """
    sizes = {"n_items": 100_000, "draws": 240, "fp_draws": 40}
    t0 = time.perf_counter()
    zipf_sampling_trial(3, alias=False, **sizes)
    scan = time.perf_counter() - t0
    t0 = time.perf_counter()
    zipf_sampling_trial(3, alias=True, **sizes)
    alias = time.perf_counter() - t0
    assert alias * 1.5 < scan, (
        f"large-catalog alias speedup below 1.5x: alias {alias:.3f}s vs scan {scan:.3f}s"
    )
