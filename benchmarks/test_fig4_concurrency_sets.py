"""E5 — Fig. 4: partition states, concurrency sets, impossibility.

The table is *derived* by enumerating reachable interrupted-3PC global
states, then checked against every claim the paper's §2 argument makes.
"""

from repro.analysis.partition_states import PartitionState
from repro.experiments.figures import run_fig4


def test_fig4_derivation(benchmark):
    result = benchmark(run_fig4, 5)
    print("\n" + result.format())
    assert len(result.argument) == 5
    # spot-check the paper's cited entries in the rendered table
    assert "PS2" in result.table and "PS5" in result.table


def test_fig4_paper_rows():
    from repro.analysis.partition_states import concurrency_sets

    sets = concurrency_sets(5)
    # the rows the paper's argument uses, verbatim
    assert PartitionState.PS3 in sets[PartitionState.PS1]
    assert PartitionState.PS3 in sets[PartitionState.PS2]
    assert PartitionState.PS6 in sets[PartitionState.PS5]
    assert PartitionState.PS2 in sets[PartitionState.PS5]
    assert PartitionState.PS5 in sets[PartitionState.PS2]
