"""E11 — the §5 headline claim, measured.

Across identical random (placement, transaction, fault) samples, the
paper's protocols keep more data accessible after failures than
Skeen's site-quorum protocol, without 3PC's atomicity violations.
"""

from repro.experiments.sweeps import availability_sweep

RUNS = 40


def test_availability_sweep(benchmark):
    rows = benchmark.pedantic(
        availability_sweep, kwargs={"runs": RUNS}, rounds=1, iterations=1
    )
    print()
    for row in rows:
        print(row.format_row())
    by_name = {row.protocol: row for row in rows}

    # headline: the paper's protocol 1 keeps more writeset data readable
    # than the site-quorum protocol it improves on — against both Skeen
    # configurations (per-transaction majority quorums, and the paper's
    # installation-pinned Example-1 quorums)
    assert by_name["qtp1"].readable_fraction > by_name["skq"].readable_fraction
    assert by_name["qtp1"].readable_fraction > by_name["skq-pinned"].readable_fraction
    assert by_name["qtp2"].readable_fraction > by_name["skq-pinned"].readable_fraction

    # 3PC "wins" availability only by giving up atomicity
    assert by_name["3pc"].violation_runs > 0

    # the safe protocols never violate
    for name in ("2pc", "skq", "skq-pinned", "qtp1", "qtp2"):
        assert by_name[name].violation_runs == 0

    # Skeen's protocols block in at least as many runs as qtp1
    assert by_name["skq"].blocked_runs >= by_name["qtp1"].blocked_runs
    assert by_name["skq-pinned"].blocked_runs >= by_name["qtp1"].blocked_runs
