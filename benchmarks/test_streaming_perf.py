"""Streaming sweep backend performance: memory stays flat in cell count.

The committed ``BENCH_sweep_streaming.json`` baseline records the
throughput (rows/sec) of the streaming pipeline at the 10^5-cell scale;
here the assertions pin the *shape* of the win with noise-proof bounds:
the classic keep-everything path allocates O(cells) — quadrupling the
sweep roughly quadruples its peak heap — while the streaming paths
(``reduce=`` partial folds, ``sink=JsonlSink``) hold a bounded window
of rows whatever the sweep size.
"""

import random
import tracemalloc

import pytest

from repro.engine import JsonlSink, MeanAcc, RowReducer, SweepSpec, run_sweep


def _probe(seed: int) -> dict:
    rng = random.Random(seed)
    return {"x": rng.random(), "y": rng.randrange(100)}


def _reducer() -> RowReducer:
    return RowReducer((("x", "x", MeanAcc()),))


def _spec(n_cells: int) -> SweepSpec:
    return SweepSpec("mem-probe", _probe, grid={}, runs=n_cells, seeding="offset")


_WARM: set[str] = set()


def _run(n_cells: int, backend: str, tmp_path=None) -> None:
    if backend == "memory":
        outcome = run_sweep(_spec(n_cells))
        assert len(outcome.results) == n_cells
    elif backend == "reduce":
        outcome = run_sweep(_spec(n_cells), reduce=_reducer())
        assert outcome.aggregate["rows"] == n_cells
    else:  # jsonl
        sink = JsonlSink(tmp_path / f"{n_cells}.jsonl.gz")
        run_sweep(_spec(n_cells), sink=sink)
        assert sink.rows_emitted == n_cells


def _peak_bytes(n_cells: int, backend: str, tmp_path=None) -> int:
    """Peak traced heap of one sweep (the allocation profile, unlike
    wall time, is stable enough for a single round).

    Each backend is warmed once first — its lazy imports and caches
    otherwise land in whichever measurement happens to run first and
    swamp the streaming paths' tiny flat profile.
    """
    if backend not in _WARM:
        _run(50, backend, tmp_path)
        _WARM.add(backend)
    tracemalloc.start()
    _run(n_cells, backend, tmp_path)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


_MEMORY_RATIO: dict[int, float] = {}


def _memory_ratio(n: int) -> float:
    """The keep-everything path's 4x-sweep heap growth (computed once)."""
    if n not in _MEMORY_RATIO:
        _MEMORY_RATIO[n] = _peak_bytes(4 * n, "memory") / _peak_bytes(n, "memory")
    return _MEMORY_RATIO[n]


@pytest.mark.perf
def test_reduce_backend_peak_memory_flat_in_cell_count():
    n = 2_500
    memory_ratio = _memory_ratio(n)
    reduce_ratio = _peak_bytes(4 * n, "reduce") / _peak_bytes(n, "reduce")
    # the classic path grows with the row list (4x cells => roughly 4x
    # heap); the reducer path folds rows as they arrive and must not
    assert reduce_ratio < memory_ratio, (
        f"reduce= scales no better than keep-everything: "
        f"reduce {reduce_ratio:.2f}x vs memory {memory_ratio:.2f}x over a 4x sweep"
    )
    assert reduce_ratio < 2.0, (
        f"reduce= peak heap grew {reduce_ratio:.2f}x over a 4x sweep — "
        "the streaming backend is accumulating rows"
    )


@pytest.mark.perf
def test_jsonl_sink_peak_memory_flat_in_cell_count(tmp_path):
    n = 2_500
    memory_ratio = _memory_ratio(n)
    jsonl_ratio = _peak_bytes(4 * n, "jsonl", tmp_path) / _peak_bytes(n, "jsonl", tmp_path)
    assert jsonl_ratio < memory_ratio, (
        f"JsonlSink scales no better than keep-everything: "
        f"jsonl {jsonl_ratio:.2f}x vs memory {memory_ratio:.2f}x over a 4x sweep"
    )
    assert jsonl_ratio < 2.0, (
        f"JsonlSink peak heap grew {jsonl_ratio:.2f}x over a 4x sweep — "
        "rows are accumulating instead of streaming to disk"
    )
