"""E16 (extension) — how long does termination take once failures hit?

For the Fig. 3 scenario (qtp1: G1 and G3 can decide), measures the
virtual time from the fault to the last decision among live sites, and
the number of elections / polls spent getting there.  Complements the
availability benchmarks: not just *whether* a partition unblocks, but
how quickly.
"""

import math

from repro.analysis.liveness import termination_timeline
from repro.workload.scenarios import run_example1_scenario


def test_termination_latency_fig3(benchmark):
    result = benchmark.pedantic(
        run_example1_scenario, args=("qtp1",), rounds=3, iterations=1
    )
    timeline = termination_timeline(result.cluster.tracer, result.txn.txn)
    print(
        f"\nfault at t={timeline.first_fault_time:g}, "
        f"last decision at t={timeline.last_decision_time:g} "
        f"(termination latency {timeline.termination_latency:g}), "
        f"{timeline.elections} election events, "
        f"{timeline.term_attempts} termination polls"
    )
    assert timeline.ever_decided
    # watchdog (3T) + election (2T) + poll (2T) + round (2T) + command:
    # the decisions land within a small constant number of T after the
    # fault — not proportional to anything else.
    assert timeline.termination_latency < 15 * result.cluster.T
    assert timeline.term_attempts >= 2  # one per deciding partition


def test_blocked_partition_never_decides():
    result = run_example1_scenario("skq")
    timeline = termination_timeline(result.cluster.tracer, result.txn.txn)
    assert not timeline.ever_decided
    assert math.isnan(timeline.termination_latency)
    assert timeline.term_attempts >= 3  # every partition tried
