"""E15 (extension) — the missing-writes read adaptation ([5], cited §2).

Measures read cost (copies consulted) with and without the adaptive
fast path, in a failure-free epoch and after a stale copy appears.
The paper cites the scheme as "improv[ing] performance when there are
no failures in the system" — the numbers here are that sentence.
"""

from repro import CatalogBuilder, Cluster


def build_cluster():
    catalog = CatalogBuilder().replicated_item("x", sites=[1, 2, 3, 4, 5], r=3, w=3).build()
    cluster = Cluster(catalog, protocol="qtp1")
    cluster.update(origin=1, writes={"x": 7})
    cluster.run()
    cluster.sync_missing_writes()
    return cluster


def read_cost(cluster, n_reads=20, fast=True):
    consulted = 0
    for i in range(n_reads):
        origin = (i % 5) + 1
        if fast:
            __, copies = cluster.fast_read(origin, "x")
        else:
            copies = len(cluster.read(origin, "x").quorum)
        consulted += copies
    return consulted


def test_failure_free_fast_path(benchmark):
    cluster = build_cluster()
    fast = benchmark(read_cost, cluster, 20, True)
    plain = read_cost(cluster, 20, False)
    print(f"\ncopies consulted over 20 reads: adaptive={fast}  quorum={plain}")
    assert fast == 20  # one copy per read
    assert plain == 60  # r(x) = 3 copies per read


def test_stale_epoch_falls_back_then_repairs():
    cluster = build_cluster()
    # manufacture a stale copy: site 5 partitioned away during a write
    cluster.network.set_partition([[1, 2, 3, 4], [5]])
    cluster.update(origin=1, writes={"x": 8})
    cluster.run()
    cluster.network.heal()
    cluster.run()
    cluster.sync_missing_writes()
    degraded = read_cost(cluster, 20, True)
    assert degraded == 60  # quorum fallback while a copy is stale
    cluster.repair("x")
    assert read_cost(cluster, 20, True) == 20  # fast path restored
