"""Crash-recovery replay performance.

``replay_data`` used to scan every WAL record and probe the store per
``apply`` — O(len(wal)) per recovery, paid on every ``recover_site``
event of a storm.  The per-item newest-``apply`` index makes it
O(items touched).  The committed ``BENCH_recovery_replay.json``
baseline records the speedup on logs harvested from a heavy E18 run at
1x and 4x length; here the assertions pin the *shape* of the win with
noise-proof bounds:

* the indexed replay never loses to the scan;
* the indexed replay is sublinear in log length — quadrupling the log
  must not quadruple the replay time (the scan does, the index reads
  the same per-item map either way).
"""

import time

import pytest

from repro.storage.recovery import replay_data
from repro.storage.store import ReplicaStore
from repro.storage.wal import WriteAheadLog


def _apply_heavy_wal(n_txns: int, n_items: int = 16, versions: int = 4) -> WriteAheadLog:
    """A commit-heavy log: every txn walks its item up a version ladder."""
    wal = WriteAheadLog(1)
    for t in range(n_txns):
        txn = f"T{t}"
        item = f"i{t % n_items}"
        wal.force(txn, "begin")
        wal.force(txn, "vote", vote="yes")
        for v in range(versions):
            wal.force(txn, "apply", item=item, value=t * 10 + v, version=t * versions + v + 1)
        wal.force(txn, "commit")
    return wal


def _fresh_store(wal: WriteAheadLog) -> ReplicaStore:
    store = ReplicaStore(1)
    for record in wal:
        if record.kind == "apply" and not store.hosts(record.payload["item"]):
            store.host(record.payload["item"], value=0, version=0)
    return store


def _best_replay(wal: WriteAheadLog, full_scan: bool, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        store = _fresh_store(wal)
        t0 = time.perf_counter()
        replay_data(wal, store, full_scan=full_scan)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.perf
def test_indexed_replay_not_slower_than_scan():
    wal = _apply_heavy_wal(600)
    scanned_store = _fresh_store(wal)
    indexed_store = _fresh_store(wal)
    replay_data(wal, scanned_store, full_scan=True)
    replay_data(wal, indexed_store)
    assert indexed_store.snapshot() == scanned_store.snapshot()
    assert _best_replay(wal, full_scan=False) < _best_replay(wal, full_scan=True) * 1.25


@pytest.mark.perf
def test_indexed_replay_sublinear_in_wal_length():
    short = _apply_heavy_wal(300)
    long = _apply_heavy_wal(1200)
    scan_ratio = _best_replay(long, full_scan=True) / _best_replay(short, full_scan=True)
    indexed_ratio = _best_replay(long, full_scan=False) / _best_replay(short, full_scan=False)
    # both logs touch the same 16 items, so the indexed replay does the
    # same work while the scan walks 4x the records; demand a clear
    # separation rather than exact constants (timers are noisy at µs).
    assert indexed_ratio < scan_ratio, (
        f"indexed replay scales no better than the scan: "
        f"indexed {indexed_ratio:.2f}x vs scan {scan_ratio:.2f}x over a 4x log"
    )
