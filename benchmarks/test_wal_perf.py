"""WAL append-path performance.

The legacy log re-scanned its whole record list on every decision
force (irrevocability check) and on every per-transaction query —
quadratic in run length for heavy traffic.  The group-commit/indexed
log answers both from per-transaction indexes.  The committed
``BENCH_wal_append.json`` baseline records the replayed
``run_heavy_workload`` speedup; this suite pins the shape of the win
with noise-proof assertions.
"""

import time

import pytest

from repro.storage.wal import WriteAheadLog


def interleaved_append(group_commit: bool, n_txns: int = 400, applies: int = 3) -> WriteAheadLog:
    """Open many transactions, then decide them against a long log —
    the decision-scan worst case the indexes exist for."""
    wal = WriteAheadLog(1, group_commit=group_commit)
    for i in range(n_txns):
        wal.force(f"T{i}", "begin")
        wal.force(f"T{i}", "vote", vote="yes")
    for i in range(n_txns):
        for j in range(applies):
            wal.force(f"T{i}", "apply", item="x", value=j, version=j)
        wal.force(f"T{i}", "commit" if i % 3 else "abort")
    return wal


@pytest.mark.perf
def test_indexed_append_beats_legacy_scan():
    best = {True: float("inf"), False: float("inf")}
    for _ in range(3):
        for mode in (False, True):
            t0 = time.perf_counter()
            interleaved_append(group_commit=mode)
            best[mode] = min(best[mode], time.perf_counter() - t0)
    assert best[True] < best[False], (
        f"indexed WAL slower than legacy scan: {best[True]:.3f}s vs {best[False]:.3f}s"
    )


@pytest.mark.perf
def test_decision_lookup_is_o1_under_load():
    wal = interleaved_append(group_commit=True)
    t0 = time.perf_counter()
    for _ in range(20_000):
        assert wal.decision("T0") == "abort"
    elapsed = time.perf_counter() - t0
    # the legacy reverse scan walks ~2000 records per probe here;
    # the index answers 20k probes in well under a second anywhere.
    assert elapsed < 1.0, f"decision looks O(n) again: {elapsed:.2f}s for 20k probes"


@pytest.mark.perf
def test_group_commit_batches_flushes(benchmark):
    wal = benchmark.pedantic(
        lambda: interleaved_append(group_commit=True), rounds=3, iterations=1
    )
    assert wal.flushes < wal.forced
    # one flush per vote (covering its begin) + one per decision
    # (covering its applies) = 2 per transaction
    assert wal.flushes == 800
