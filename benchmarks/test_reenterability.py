"""E13 — §3.1 property (3): the termination protocol is reenterable.

Waves of re-partitioning strike *during* termination; after the final
heal every transaction must have terminated consistently, and the
trace must show multiple termination attempts (the re-entry actually
happened).
"""

import pytest

from repro.experiments.sweeps import reenterability_storm


@pytest.mark.parametrize("protocol", ["qtp1", "qtp2"])
def test_reenterability_storm(benchmark, protocol):
    result = benchmark.pedantic(
        reenterability_storm,
        kwargs={"protocol": protocol, "runs": 10, "waves": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_row())
    assert result.all_consistent
    assert result.terminated_runs == result.runs
    assert result.total_term_attempts > result.runs  # re-entry exercised
