"""Benchmark harness configuration.

Every benchmark here regenerates one artifact of the paper (see
DESIGN.md §4 and EXPERIMENTS.md) and *asserts the paper's shape* —
who wins, who blocks, who violates — on top of timing the run.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated tables.
"""
