"""E1 + E2 — Fig. 1 (2PC) and Fig. 2 (3PC) message flows.

Regenerates the message histogram and phase count of a failure-free
commit and asserts the structural differences the figures show: 3PC
adds the prepare/ack round (one extra phase, 2n extra messages).
"""

from repro.experiments.flows import format_flow, measure_commit

N = 5


def test_fig1_twopc_flow(benchmark):
    metrics = benchmark(measure_commit, "2pc", N)
    print("\n" + format_flow(metrics))
    assert metrics.outcome == "commit"
    # Fig. 1: vote-req, vote, decision = 3n messages
    assert metrics.messages["2pc.vote-req"] == N
    assert metrics.messages["2pc.vote"] == N
    assert metrics.messages["2pc.commit"] == N
    assert "2pc.prepare" not in metrics.messages
    assert metrics.total_messages == 3 * N


def test_fig2_threepc_flow(benchmark):
    metrics = benchmark(measure_commit, "3pc", N)
    print("\n" + format_flow(metrics))
    assert metrics.outcome == "commit"
    # Fig. 2: vote-req, vote, prepare, pc-ack, commit = 5n messages
    assert metrics.messages["3pc.prepare"] == N
    assert metrics.messages["3pc.ack"] == N
    assert metrics.total_messages == 5 * N


def test_fig2_costs_one_extra_round(benchmark):
    two = measure_commit("2pc", N)
    three = benchmark(measure_commit, "3pc", N)
    # the buffer state costs exactly one round trip (2T) of latency
    assert three.decision_time - two.decision_time == 2.0
    assert three.total_messages - two.total_messages == 2 * N
