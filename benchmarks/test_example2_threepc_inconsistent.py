"""E8 — Example 2: 3PC termination is inconsistent under partitioning.

Same Fig. 3 scenario under 3PC + Skeen's site-failure termination:
G2 (which saw the PREPARE) commits, G1 and G3 abort — an atomicity
violation the harness must detect.
"""

from repro.experiments.examples import run_example2


def test_example2_mixed_termination(benchmark):
    verdict = benchmark(run_example2)
    print(
        f"\n3PC termination: committed={verdict.committed_sites} "
        f"aborted={verdict.aborted_sites}"
    )
    assert verdict.matches_paper
    assert verdict.outcome == "mixed"
    assert verdict.g2_committed
    assert verdict.g1_g3_aborted
