"""E10 + E12 — Fig. 9: quorum commit protocols and the latency claim.

E10 asserts the structural behaviour (early COMMIT before all PC-ACKs)
and E12 the §5 performance claim: *commit protocol 2 runs faster than
commit protocol 1*, and both decide no later than 3PC, because

    CP2 waits for r(x)-of-some-item <= CP1 waits for w(x)-of-every-item
    <= 3PC waits for everyone.
"""

from repro.experiments.flows import latency_sweep, measure_commit

N = 7


def test_fig9_early_commit_structure(benchmark):
    """CP1's coordinator decides without the slowest site's ack."""
    metrics = benchmark(measure_commit, "qtp1", N, 3, True)  # seed 3, jitter
    assert metrics.outcome == "commit"


def test_fig9_latency_ordering(benchmark):
    rows = benchmark.pedantic(
        latency_sweep,
        kwargs={"n_sites": N, "runs": 40, "r": 2, "w": 6},
        rounds=1,
        iterations=1,
    )
    print()
    for row in rows:
        print(row.format_row())
    by_name = {row.protocol: row for row in rows}
    # the paper's ordering: qtp2 <= qtp1 <= 3pc in mean decision latency
    assert by_name["qtp2"].mean < by_name["qtp1"].mean
    assert by_name["qtp1"].mean < by_name["3pc"].mean


def test_fig9_message_counts_match_3pc():
    """The quorum protocols change *when* COMMIT is sent, not how many
    messages flow (same 5n histogram as 3PC in the failure-free case)."""
    three = measure_commit("3pc", N)
    qtp1 = measure_commit("qtp1", N)
    assert qtp1.total_messages == three.total_messages
