"""E20 (extension) — the §5 generalization, demonstrated and measured.

"The idea can be generalized to work with other partition-processing
strategies."  Here the Fig. 5 skeleton runs over the primary-copy
strategy ([1], [12]) instead of Gifford voting, on the same Fig. 3
failure and on the randomized model-check corpus: same consistency
guarantee, availability shaped by where the primaries sit instead of
where the vote mass sits.
"""

from repro import Cluster, FailurePlan
from repro.experiments.sweeps import modelcheck
from repro.workload.scenarios import EXAMPLE1_GROUPS, example1_catalog


def run_fig3_with_primaries(primaries):
    cluster = Cluster(example1_catalog(), protocol="qtpp", primaries=primaries)
    cluster.network.add_filter(lambda m: m.mtype.endswith(".prepare") and m.dst != 5)
    txn = cluster.update(origin=1, writes={"x": 1, "y": 2})
    cluster.arm_failures(
        FailurePlan().crash(3.5, 1).partition(3.5, *EXAMPLE1_GROUPS)
    )
    cluster.run()
    return cluster, txn


def test_generalized_rule_frees_primary_partitions(benchmark):
    cluster, txn = benchmark.pedantic(
        run_fig3_with_primaries, args=({"x": 2, "y": 6},), rounds=3, iterations=1
    )
    report = cluster.outcome(txn.txn)
    availability = cluster.availability()
    print(f"\nprimaries x->2, y->6: outcome={report.outcome} atomic={report.atomic}")
    print(availability.describe())
    assert report.atomic
    # G1 (holds x's primary) and G3 (holds y's primary) terminate
    states = cluster.states(txn.txn)
    assert states[2] == "A" and states[6] == "A"
    # ... restoring exactly the access the strategy would grant anyway
    assert availability.row(frozenset(EXAMPLE1_GROUPS[0]), "x").readable


def test_primary_placement_shapes_availability():
    """Placement is the whole ballgame: the same Fig. 3 failure
    commits, aborts or blocks depending only on where the primaries
    sit.  Both primaries beside the PC site let G2 run the commit
    round; y's primary in an all-W partition lets G3 abort; x's
    primary on the crashed coordinator (with y's pinned in PC) kills
    every branch of the rule — nothing can terminate anywhere."""
    expected = {
        ("commit",): {"x": 4, "y": 5},
        ("abort",): {"x": 4, "y": 6},
        ("blocked",): {"x": 1, "y": 5},
    }
    for (outcome,), primaries in expected.items():
        cluster, txn = run_fig3_with_primaries(primaries)
        report = cluster.outcome(txn.txn)
        assert report.atomic
        assert report.outcome == outcome, (primaries, report.outcome)


def test_generalization_is_safe(benchmark):
    result = benchmark.pedantic(
        modelcheck,
        kwargs={"protocol": "qtpp", "runs": 50, "base_seed": 2000},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_row())
    assert result.theorem_holds
