"""Ablation benchmarks (DESIGN.md §6 — D1 and D4-extended).

* pairing: the paper pairs CP1 with termination rule 1 and CP2 with
  rule 2.  The adversarial interleaving here shows the pairing is
  load-bearing: CP2's early commit (r-of-some in PC) is only safe
  against rule 2's w-of-every abort threshold — crossing it with
  rule 1 terminates inconsistently.
* timeout: shrinking every protocol window below the true delay bound
  (a wrong estimate of T) causes spurious timeouts but zero safety
  violations — timing affects liveness only.
"""

from repro.experiments.ablations import pairing_ablation, timeout_ablation


def test_pairing_ablation(benchmark):
    results = benchmark.pedantic(pairing_ablation, rounds=1, iterations=1)
    print()
    for r in results:
        print(
            f"{r.commit_protocol} + {r.termination_rule:<18} -> "
            f"{r.outcome:<8} atomic={r.atomic}"
        )
    by_pair = {(r.commit_protocol, r.termination_rule): r for r in results}
    # the paper's pairings are safe
    assert by_pair[("qtp1", "qtp-termination-1")].atomic
    assert by_pair[("qtp2", "qtp-termination-2")].atomic
    # the conservative cross (CP1's stronger quorum vs rule 2) is safe too
    assert by_pair[("qtp1", "qtp-termination-2")].atomic
    # ... but CP2's weak commit quorum against rule 1's weak abort
    # threshold is NOT — exactly why the paper pairs them as it does
    assert not by_pair[("qtp2", "qtp-termination-1")].atomic


def test_timeout_ablation(benchmark):
    rows = benchmark.pedantic(
        timeout_ablation, kwargs={"runs": 15}, rounds=1, iterations=1
    )
    print()
    for row in rows:
        print(
            f"T-estimate x{row.timeout_scale:<5} violations={row.violations} "
            f"mean termination attempts={row.mean_term_attempts:.2f}"
        )
    for row in rows:
        assert row.violations == 0  # safety is timing-independent
